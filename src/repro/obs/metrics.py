"""Metrics registry: counters, gauges, and histograms with labels.

Two consumers shape this module:

* the **simulation kernel** needs a fixed, canonical set of integer
  counters (``kernel_stats``) that is cheap to increment on the hot path,
  comparable with ``==`` in the parity tests, and identical across the
  dense, event-driven, and cached kernels and across every batch backend.
  That is :class:`CounterSet` plus :data:`KERNEL_STAT_KEYS` — the *single*
  definition of which keys exist (``tests/sim/test_kernel_stat_keys.py``
  asserts every kernel/backend produces exactly this set);
* the **sweep executor** needs to aggregate heterogeneous measurements —
  kernel counters summed across points, batch-backend round counts,
  per-point wall-time distributions — into one deterministic, JSON-ready
  structure for the manifest's ``execution.telemetry`` block.  That is
  :class:`MetricsRegistry`.

Everything here is stdlib-only and import-light: :mod:`repro.sim` imports
this module, so it must never import back into the simulator.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Tuple

#: The canonical scheduler-instrumentation key set.  Every
#: ``SimState.kernel_stats`` mapping — dense kernel, event-driven kernel
#: with or without cached wakes, any batch backend — carries exactly these
#: keys, in this order.  Grow the kernel's instrumentation *here*, never by
#: sprinkling ad-hoc keys at increment sites.
KERNEL_STAT_KEYS: Tuple[str, ...] = (
    "next_event_calls",
    "dense_ticks",
    "spans_skipped",
    "cycles_skipped",
    "plan_builds",
    "plan_shared",
    "plan_evictions",
)


class CounterSet(dict):
    """A dict of integer counters over a fixed key set.

    Subclasses ``dict`` so the hot-path idiom (``stats["dense_ticks"] += 1``)
    and the parity-test idiom (``stats_a == stats_b``, comparison against a
    plain dict literal) keep working unchanged, and adds the snapshot/diff
    protocol the stats-parity tests and the metrics registry consume:

    * :meth:`snapshot` — an immutable point-in-time copy;
    * :meth:`diff` — the per-key delta against an earlier snapshot (what a
      region of execution *added*);
    * :meth:`reset` — zero every counter in place (same key set).

    Keys are fixed at construction: reading or writing an undeclared key
    raises ``KeyError``, which is how key-set drift between kernels is
    caught at the increment site instead of in a downstream comparison.
    """

    def __init__(self, keys: Iterable[str] = KERNEL_STAT_KEYS) -> None:
        super().__init__((key, 0) for key in keys)

    def __setitem__(self, key: str, value: int) -> None:
        if key not in self:
            raise KeyError(
                f"counter {key!r} is not declared in this CounterSet "
                f"(declared: {', '.join(self)}); add it to the canonical key set"
            )
        super().__setitem__(key, value)

    def __reduce__(self):
        # The default dict-subclass pickling rebuilds an *empty* instance and
        # replays items through the guarded ``__setitem__`` (which rejects
        # every key on an empty set).  Rebuild from a snapshot instead so
        # prepared-state snapshots (repro.sim.snapshot) round-trip.
        return (_counter_set_from_snapshot, (dict(self),))

    def snapshot(self) -> Dict[str, int]:
        """A plain-dict point-in-time copy of every counter."""
        return dict(self)

    def diff(self, since: Mapping[str, int]) -> Dict[str, int]:
        """Per-key delta relative to an earlier :meth:`snapshot`."""
        return {key: value - since.get(key, 0) for key, value in self.items()}

    def reset(self) -> None:
        """Zero every counter in place (key set unchanged)."""
        for key in self:
            super().__setitem__(key, 0)

    def add(self, other: Mapping[str, int]) -> None:
        """Accumulate another mapping's counts into this set (shared keys)."""
        for key, value in other.items():
            if key in self:
                super().__setitem__(key, self[key] + value)


def _counter_set_from_snapshot(snapshot: Dict[str, int]) -> "CounterSet":
    """Rebuild a :class:`CounterSet` from a key→value snapshot (pickle)."""
    counters = CounterSet(snapshot)
    for key, value in snapshot.items():
        dict.__setitem__(counters, key, value)
    return counters


Labels = Tuple[Tuple[str, str], ...]


def _labels_key(labels: Optional[Mapping[str, object]]) -> Labels:
    if not labels:
        return ()
    return tuple(sorted((str(key), str(value)) for key, value in labels.items()))


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """A streaming summary of observed values (count/sum/min/max).

    Deliberately bucket-free: the consumers here (manifest telemetry, the
    ``stats`` renderer) want compact summaries, and full distributions
    belong in the trace file where every span carries its own duration.
    """

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = 0.0
        self.max = 0.0

    def observe(self, value: float) -> None:
        if self.count == 0:
            self.min = self.max = float(value)
        else:
            if value < self.min:
                self.min = float(value)
            if value > self.max:
                self.max = float(value)
        self.count += 1
        self.total += float(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }


class MetricsRegistry:
    """A process-local namespace of named, labelled metrics.

    ``counter``/``gauge``/``histogram`` create-or-return the instrument for
    ``(name, labels)``, so call sites never coordinate registration.
    :meth:`as_dict` renders everything into a deterministic (sorted)
    JSON-ready mapping — the shape embedded in the sweep manifest's
    ``execution.telemetry.metrics`` block::

        {"counter": {"kernel.dense_ticks": 12,
                     "sweep.points{kind=computed}": 4},
         "gauge": {...},
         "histogram": {"sweep.point_wall_seconds": {"count": 4, ...}}}

    Label sets render into the name as ``{key=value,...}`` with sorted
    keys, mirroring the Prometheus exposition idiom without the dependency.
    """

    def __init__(self) -> None:
        self._counters: Dict[Tuple[str, Labels], Counter] = {}
        self._gauges: Dict[Tuple[str, Labels], Gauge] = {}
        self._histograms: Dict[Tuple[str, Labels], Histogram] = {}

    def counter(self, name: str, labels: Optional[Mapping[str, object]] = None) -> Counter:
        return self._counters.setdefault((name, _labels_key(labels)), Counter())

    def gauge(self, name: str, labels: Optional[Mapping[str, object]] = None) -> Gauge:
        return self._gauges.setdefault((name, _labels_key(labels)), Gauge())

    def histogram(self, name: str, labels: Optional[Mapping[str, object]] = None) -> Histogram:
        return self._histograms.setdefault((name, _labels_key(labels)), Histogram())

    def absorb_kernel_stats(
        self, stats: Mapping[str, int], labels: Optional[Mapping[str, object]] = None
    ) -> None:
        """Accumulate one simulator's ``kernel_stats`` into ``kernel.*``
        counters — the registry-side half of the :class:`CounterSet`
        protocol (sweep workers sum per-point kernel stats this way)."""
        for key, value in stats.items():
            self.counter(f"kernel.{key}", labels).inc(int(value))

    @staticmethod
    def _render(name: str, labels: Labels) -> str:
        if not labels:
            return name
        inner = ",".join(f"{key}={value}" for key, value in labels)
        return f"{name}{{{inner}}}"

    def as_dict(self) -> Dict[str, Dict[str, object]]:
        """Deterministic JSON-ready view of every instrument."""
        return {
            "counter": {
                self._render(name, labels): counter.value
                for (name, labels), counter in sorted(self._counters.items())
            },
            "gauge": {
                self._render(name, labels): gauge.value
                for (name, labels), gauge in sorted(self._gauges.items())
            },
            "histogram": {
                self._render(name, labels): histogram.as_dict()
                for (name, labels), histogram in sorted(self._histograms.items())
            },
        }

    def merge_dict(self, rendered: Mapping[str, Mapping[str, object]]) -> None:
        """Accumulate an :meth:`as_dict` payload from another process.

        Counters add, gauges last-write-win, histograms merge their
        summaries — which is how the sweep executor folds each worker
        chunk's metrics into the campaign-level registry.  Rendered label
        strings round-trip as opaque names (they only need to stay stable
        and sorted, not to be re-parsed).
        """
        for name, value in rendered.get("counter", {}).items():
            self.counter(name).inc(int(value))
        for name, value in rendered.get("gauge", {}).items():
            self.gauge(name).set(float(value))
        for name, summary in rendered.get("histogram", {}).items():
            histogram = self.histogram(name)
            count = int(summary.get("count", 0))
            if count == 0:
                continue
            if histogram.count == 0:
                histogram.min = float(summary["min"])
                histogram.max = float(summary["max"])
            else:
                histogram.min = min(histogram.min, float(summary["min"]))
                histogram.max = max(histogram.max, float(summary["max"]))
            histogram.count += count
            histogram.total += float(summary["sum"])
