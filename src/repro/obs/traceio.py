"""Chrome trace-event JSON export, validation, and shard merging.

The on-disk format is the Chrome/Perfetto *JSON object* flavour::

    {"schema": "repro-trace/1",
     "displayTimeUnit": "ms",
     "metadata": {"tool": "repro.obs", "dropped_events": 0, ...},
     "traceEvents": [
       {"ph": "M", "name": "process_name", "pid": 1234, "tid": 0,
        "args": {"name": "worker-1234"}},
       {"ph": "X", "name": "kernel.span", "cat": "kernel",
        "ts": 12.5, "dur": 3.2, "pid": 1234, "tid": 0,
        "args": {"cycles": 1999}},
       {"ph": "C", "name": "batch.live", "cat": "batch",
        "ts": 80.1, "pid": 1234, "tid": 0, "args": {"instances": 7}}]}

Open it in Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``; each
worker process renders as its own lane.  ``ts``/``dur`` are microseconds
relative to the document's own zero (every export re-bases its earliest
event to 0, so wall-clock epochs never leak into artifacts and documents
from different hosts line up side by side when merged).

:func:`validate_trace` is the schema contract the CI telemetry job and the
tests enforce; :func:`merge_trace_documents` is the ``sweep merge``-aware
combiner that stitches per-shard documents into one, remapping pids into
disjoint per-shard ranges and prefixing lane names with the shard label.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence

#: Stamped into every exported document; bump on incompatible shape changes.
TRACE_SCHEMA = "repro-trace/1"

#: Event phases the exporter emits and the validator accepts: complete
#: spans, counter samples, and metadata records.
_ALLOWED_PHASES = ("X", "C", "M")


def _lane_metadata(events: Sequence[Mapping[str, object]], labels: Mapping[int, str]) -> List[Dict[str, object]]:
    """One ``process_name`` metadata event per distinct pid (first-seen order)."""
    seen: List[int] = []
    for event in events:
        pid = int(event.get("pid", 0))
        if pid not in seen:
            seen.append(pid)
    return [
        {
            "ph": "M",
            "name": "process_name",
            "pid": pid,
            "tid": 0,
            "args": {"name": labels.get(pid, f"process-{pid}")},
        }
        for pid in seen
    ]


def _rebase(events: Sequence[Mapping[str, object]]) -> List[Dict[str, object]]:
    """Copy ``events`` with timestamps re-based so the earliest is 0."""
    stamps = [float(event["ts"]) for event in events if "ts" in event]
    origin = min(stamps) if stamps else 0.0
    rebased = []
    for event in events:
        record = dict(event)
        if "ts" in record:
            record["ts"] = float(record["ts"]) - origin
        rebased.append(record)
    return rebased


def trace_document(
    events: Sequence[Mapping[str, object]],
    labels: Optional[Mapping[int, str]] = None,
    metadata: Optional[Mapping[str, object]] = None,
    dropped: int = 0,
) -> Dict[str, object]:
    """Assemble buffered events into one exportable trace document.

    ``labels`` maps pids to human lane names (``{pid: "worker-0"}``);
    unlabelled pids get ``process-<pid>``.  ``dropped`` records how many
    events the tracer discarded at its buffer cap — a truncated trace must
    say so rather than pass for a complete one.
    """
    rebased = _rebase(list(events))
    rebased.sort(key=lambda event: (float(event.get("ts", 0.0)), int(event.get("pid", 0))))
    document_metadata: Dict[str, object] = {"tool": "repro.obs", "dropped_events": dropped}
    if metadata:
        document_metadata.update(metadata)
    return {
        "schema": TRACE_SCHEMA,
        "displayTimeUnit": "ms",
        "metadata": document_metadata,
        "traceEvents": _lane_metadata(rebased, dict(labels or {})) + rebased,
    }


def write_trace(path: Path, document: Mapping[str, object]) -> Path:
    """Write one trace document as JSON; return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(document, indent=1, sort_keys=True) + "\n", encoding="utf-8")
    return path


def validate_trace(document: object) -> Dict[str, object]:
    """Validate a trace document against the documented schema.

    Returns the document (typed as a dict) when valid; raises ``ValueError``
    naming the first offending event otherwise.  This is the contract the
    ``telemetry-smoke`` CI job and ``tests/sweep/test_telemetry.py`` hold
    every exported (and merged) trace to.
    """
    if not isinstance(document, dict):
        raise ValueError("trace document must be a JSON object")
    if document.get("schema") != TRACE_SCHEMA:
        raise ValueError(
            f"trace schema {document.get('schema')!r} != {TRACE_SCHEMA!r}"
        )
    metadata = document.get("metadata")
    if not isinstance(metadata, dict) or "dropped_events" not in metadata:
        raise ValueError("trace metadata must be an object with dropped_events")
    events = document.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("traceEvents must be a list")
    for position, event in enumerate(events):
        where = f"traceEvents[{position}]"
        if not isinstance(event, dict):
            raise ValueError(f"{where}: not an object")
        phase = event.get("ph")
        if phase not in _ALLOWED_PHASES:
            raise ValueError(f"{where}: ph {phase!r} not in {_ALLOWED_PHASES}")
        if not isinstance(event.get("name"), str) or not event["name"]:
            raise ValueError(f"{where}: missing name")
        if not isinstance(event.get("pid"), int) or not isinstance(event.get("tid"), int):
            raise ValueError(f"{where}: pid/tid must be integers")
        if phase == "M":
            continue
        if not isinstance(event.get("cat"), str) or not event["cat"]:
            raise ValueError(f"{where}: missing cat")
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            raise ValueError(f"{where}: ts must be a non-negative number")
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError(f"{where}: dur must be a non-negative number")
        if phase == "C" and not isinstance(event.get("args"), dict):
            raise ValueError(f"{where}: counter events need an args object")
    return document


def validate_trace_file(path: Path) -> Dict[str, object]:
    """Load and validate one trace JSON file; return the document."""
    try:
        document = json.loads(Path(path).read_text(encoding="utf-8"))
    except OSError as exc:
        raise ValueError(f"{path}: unreadable trace file: {exc}") from None
    except ValueError as exc:
        raise ValueError(f"{path}: invalid JSON: {exc}") from None
    return validate_trace(document)


def merge_trace_documents(
    documents: Sequence[Mapping[str, object]], labels: Sequence[str]
) -> Dict[str, object]:
    """Stitch per-shard trace documents into one (the ``sweep merge`` path).

    Each input document's process lanes are remapped into a disjoint pid
    range (shard ``i`` occupies ``1000 * (i + 1) + k`` for its ``k``-th
    first-seen pid) and its lane names are prefixed with the shard's label,
    so a merged trace shows every shard's workers side by side on one
    re-based timeline.  Dropped-event counts accumulate.
    """
    if len(documents) != len(labels):
        raise ValueError("one label per trace document required")
    merged_events: List[Dict[str, object]] = []
    lane_labels: Dict[int, str] = {}
    dropped = 0
    for position, (document, label) in enumerate(zip(documents, labels)):
        validate_trace(document)
        metadata = document["metadata"]
        dropped += int(metadata.get("dropped_events", 0))
        names: Dict[int, str] = {}
        remap: Dict[int, int] = {}
        for event in document["traceEvents"]:
            pid = int(event["pid"])
            if event.get("ph") == "M" and event.get("name") == "process_name":
                names[pid] = str(event.get("args", {}).get("name", f"process-{pid}"))
                continue
            if pid not in remap:
                remap[pid] = 1000 * (position + 1) + len(remap)
            record = dict(event)
            record["pid"] = remap[pid]
            merged_events.append(record)
        for pid, new_pid in remap.items():
            lane_labels[new_pid] = f"{label}/{names.get(pid, f'process-{pid}')}"
    return trace_document(
        merged_events,
        labels=lane_labels,
        metadata={"merged_from": list(labels)},
        dropped=dropped,
    )


def summarize_trace(document: Mapping[str, object]) -> Dict[str, object]:
    """Per-category event counts and total span time (for ``run stats``)."""
    categories: Dict[str, Dict[str, float]] = {}
    spans = 0
    for event in document.get("traceEvents", ()):
        if event.get("ph") == "M":
            continue
        cat = str(event.get("cat", "?"))
        entry = categories.setdefault(cat, {"events": 0, "span_ms": 0.0})
        entry["events"] += 1
        if event.get("ph") == "X":
            spans += 1
            entry["span_ms"] += float(event.get("dur", 0.0)) / 1000.0
    return {
        "spans": spans,
        "dropped_events": int(document.get("metadata", {}).get("dropped_events", 0)),
        "categories": categories,
    }
