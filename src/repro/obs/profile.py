"""Per-phase wall-time profiling for the sweep executor.

``sweep --profile`` answers "where did the wall-clock go" for a campaign:
the executor charges every second of work to one of five phases —

* ``expand``   — grid expansion into concrete sweep points;
* ``prepare``  — scenario construction (batched groups: the batch-prepare
  hook plus enrolment; per-instance points prepare inside their run and
  report 0 here);
* ``simulate`` — advancing the kernel (the scenario run, or the batch
  round loop);
* ``finalize`` — post-processing outcomes into point records (activity
  flattening, power/area models);
* ``write``    — serialising results.json/results.csv.

Worker processes time their own chunks and the parent sums them, so under
``--jobs N`` the phase totals are *worker-summed* wall time and may exceed
the campaign's end-to-end wall clock — the ratio is the effective
parallelism.  The breakdown lands in the manifest's
``execution.telemetry.profile`` block and is rendered by
``python -m repro.run stats`` and the ``--profile`` end-of-run summary.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, Mapping, Tuple

#: The canonical sweep phases, in pipeline order.
SWEEP_PHASES: Tuple[str, ...] = ("expand", "prepare", "simulate", "finalize", "write")


class PhaseTimer:
    """Accumulates wall seconds per named phase."""

    __slots__ = ("seconds",)

    def __init__(self) -> None:
        self.seconds: Dict[str, float] = {phase: 0.0 for phase in SWEEP_PHASES}

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Charge the body's wall time to ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add(name, time.perf_counter() - start)

    def add(self, name: str, seconds: float) -> None:
        self.seconds[name] = self.seconds.get(name, 0.0) + seconds

    def merge(self, other: Mapping[str, float]) -> None:
        """Sum another timer's phase totals into this one (worker fold-in)."""
        for name, seconds in other.items():
            self.add(name, seconds)

    def as_dict(self) -> Dict[str, float]:
        """JSON-ready phase totals (every canonical phase present)."""
        return dict(self.seconds)


def format_profile(profile: Mapping[str, float], wall_seconds: float) -> str:
    """Human-readable phase table (the ``--profile`` summary / ``stats``).

    Percentages are of the summed phase time, not the end-to-end wall
    clock: under a worker pool the phases overlap, and the final line makes
    that explicit by reporting both totals.
    """
    total = sum(profile.values())
    lines = ["phase        seconds   share"]
    for name in SWEEP_PHASES:
        seconds = profile.get(name, 0.0)
        share = seconds / total * 100.0 if total > 0 else 0.0
        lines.append(f"{name:<10} {seconds:>9.3f}   {share:5.1f}%")
    for name in sorted(set(profile) - set(SWEEP_PHASES)):
        seconds = profile[name]
        share = seconds / total * 100.0 if total > 0 else 0.0
        lines.append(f"{name:<10} {seconds:>9.3f}   {share:5.1f}%")
    lines.append(
        f"{'total':<10} {total:>9.3f}   (worker-summed; end-to-end wall "
        f"{wall_seconds:.3f} s)"
    )
    return "\n".join(lines)
