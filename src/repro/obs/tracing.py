"""Structured span tracing with a zero-overhead disabled mode.

Instrumented code — the kernel's span loop, the batch backends, the sweep
executor, the artifacts writer — consults the process-global
:data:`TRACER` through a single ``is not None`` check per instrumented
region.  When no tracer is installed (the default) that check is the
*entire* cost of the telemetry layer on the hot path;
``benchmarks/test_bench_telemetry.py`` measures it against the raw span
loop and asserts it stays under 5%.  When a tracer is installed
(``--trace-out``, :func:`capture`), events buffer in memory as Chrome
trace-event dicts and are exported by :mod:`repro.obs.traceio`.

The hot-path idiom::

    from repro.obs import tracing
    ...
    tracer = tracing.TRACER          # one global fetch per step()/run() entry
    ...
    if tracer is not None:           # one identity check per span boundary
        tracer.event("kernel.span", "kernel", start_ns, dur_ns, {...})

Buffers are per process: a multiprocessing sweep worker installs its own
tracer, drains it into the chunk outcome, and the parent stitches every
worker's events into one document with per-worker process lanes (the pid
recorded on each event at emission time).
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Mapping, Optional

#: Hard cap on buffered events per tracer: a runaway trace (a dense run
#: with millions of boundaries) degrades to a counted drop, never to
#: unbounded memory.  Generous enough that every campaign in this repo
#: stays far below it.
DEFAULT_MAX_EVENTS = 1_000_000


class SpanTracer:
    """An in-memory buffer of Chrome trace events for one process.

    Events are plain dicts in the Chrome trace-event format (``ph: "X"``
    complete events with microsecond ``ts``/``dur``, ``ph: "C"`` counter
    samples), stamped with this process's pid so multi-process traces merge
    into per-worker lanes.  Timestamps come from ``perf_counter_ns`` — they
    are comparable *within* a process; the exporter re-bases each process
    lane so merged documents line up at zero.
    """

    __slots__ = ("events", "dropped", "pid")

    def __init__(self) -> None:
        self.events: List[Dict[str, object]] = []
        self.dropped = 0
        self.pid = os.getpid()

    # The clock instrumented call sites use for start stamps.
    now_ns = staticmethod(time.perf_counter_ns)

    def event(
        self,
        name: str,
        cat: str,
        start_ns: int,
        dur_ns: int,
        args: Optional[Mapping[str, object]] = None,
        tid: int = 0,
    ) -> None:
        """Record one complete ("X") span event."""
        if len(self.events) >= DEFAULT_MAX_EVENTS:
            self.dropped += 1
            return
        record: Dict[str, object] = {
            "name": name,
            "cat": cat,
            "ph": "X",
            "ts": start_ns / 1_000.0,
            "dur": max(dur_ns, 0) / 1_000.0,
            "pid": self.pid,
            "tid": tid,
        }
        if args:
            record["args"] = dict(args)
        self.events.append(record)

    def counter(
        self, name: str, cat: str, values: Mapping[str, object], tid: int = 0
    ) -> None:
        """Record one counter ("C") sample (rendered as a graph lane)."""
        if len(self.events) >= DEFAULT_MAX_EVENTS:
            self.dropped += 1
            return
        self.events.append(
            {
                "name": name,
                "cat": cat,
                "ph": "C",
                "ts": self.now_ns() / 1_000.0,
                "pid": self.pid,
                "tid": tid,
                "args": dict(values),
            }
        )

    @contextmanager
    def span(self, name: str, cat: str, **args: object) -> Iterator[Dict[str, object]]:
        """Context manager emitting one complete event around its body.

        Yields the (mutable) args mapping so the body can attach results
        (e.g. the number of cycles a run actually advanced)."""
        mutable: Dict[str, object] = dict(args)
        start = self.now_ns()
        try:
            yield mutable
        finally:
            self.event(name, cat, start, self.now_ns() - start, mutable or None)

    def drain(self) -> List[Dict[str, object]]:
        """Return and clear the buffered events (drop counter kept)."""
        events, self.events = self.events, []
        return events


#: The process-global tracer instrumented code checks.  ``None`` (the
#: default) disables tracing; hot paths fetch this once per entry and pay
#: one ``is not None`` per span boundary.
TRACER: Optional[SpanTracer] = None


def active_tracer() -> Optional[SpanTracer]:
    """The installed tracer, or ``None`` when tracing is disabled."""
    return TRACER


def install(tracer: Optional[SpanTracer] = None) -> SpanTracer:
    """Install (and return) the process-global tracer.

    Installing over an existing tracer replaces it — callers that need
    nesting semantics should use :func:`capture`, which restores the
    previous tracer on exit.
    """
    global TRACER
    TRACER = tracer if tracer is not None else SpanTracer()
    return TRACER


def uninstall() -> Optional[SpanTracer]:
    """Remove and return the process-global tracer (``None`` if none)."""
    global TRACER
    tracer, TRACER = TRACER, None
    return tracer


@contextmanager
def capture() -> Iterator[SpanTracer]:
    """Install a fresh tracer for the body, restoring the prior one after.

    The yielded tracer holds every event emitted in the body (drain it
    before or after exit)."""
    global TRACER
    previous = TRACER
    tracer = SpanTracer()
    TRACER = tracer
    try:
        yield tracer
    finally:
        TRACER = previous
