"""Channel-based µDMA model.

Each :class:`DmaChannel` pairs a source peripheral RX FIFO (currently the SPI
controller's) with a destination buffer in L2/SRAM.  The engine moves one
word per cycle and channel when data is available, writes it to memory
through the SoC interconnect, and pulses a per-channel ``eot`` event line on
the event fabric when the programmed length completes — the event PELS (or
the interrupt controller, in the baseline) links on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.bus.interconnect import SystemInterconnect
from repro.bus.transaction import BusRequest, TransferKind
from repro.peripherals.events import EventFabric
from repro.peripherals.spi import SpiController
from repro.sim.component import Component


@dataclass
class DmaChannel:
    """Configuration and progress state of one µDMA channel."""

    channel_id: int
    source: SpiController
    destination_address: int
    length_words: int
    enabled: bool = True
    words_moved: int = field(default=0, init=False)
    transfers_completed: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.channel_id < 0:
            raise ValueError("channel id must be non-negative")
        if self.destination_address % 4 != 0:
            raise ValueError("destination address must be word aligned")
        if self.length_words < 1:
            raise ValueError("transfer length must be at least one word")

    def restart(self) -> None:
        """Re-arm the channel for another transfer of ``length_words``."""
        self.enabled = True


class MicroDma(Component):
    """The µDMA engine: moves peripheral data to memory and signals completion."""

    def __init__(
        self,
        name: str = "udma",
        interconnect: Optional[SystemInterconnect] = None,
        fabric: Optional[EventFabric] = None,
    ) -> None:
        super().__init__(name)
        self.interconnect = interconnect
        self.fabric = fabric
        self.channels: List[DmaChannel] = []
        self._event_lines: dict[int, str] = {}
        self._in_flight: List[tuple[DmaChannel, BusRequest]] = []
        self._progress: dict[int, int] = {}
        self.total_words_moved = 0

    def add_channel(
        self,
        source: SpiController,
        destination_address: int,
        length_words: int,
    ) -> DmaChannel:
        """Create, register, and return a new channel."""
        channel = DmaChannel(
            channel_id=len(self.channels),
            source=source,
            destination_address=destination_address,
            length_words=length_words,
        )
        self.channels.append(channel)
        self._progress[channel.channel_id] = 0
        if self.fabric is not None:
            line = self.fabric.add_line(f"{self.name}.ch{channel.channel_id}_eot", producer=self.name)
            self.fabric.register_producer(line.name, self)
            self._event_lines[channel.channel_id] = line.name
        self.wake_changed()
        return channel

    def channel_event_line(self, channel: DmaChannel) -> str:
        """Fabric line pulsed when ``channel`` finishes a transfer."""
        try:
            return self._event_lines[channel.channel_id]
        except KeyError as exc:
            raise RuntimeError("µDMA has no event fabric connected") from exc

    def tick(self, cycle: int) -> None:
        self._retire_writes()
        moved_any = False
        for channel in self.channels:
            if not channel.enabled or channel.source.rx_level == 0:
                continue
            moved_any = True
            self._move_word(channel, cycle)
        if moved_any:
            self.record("busy_cycles")

    def _move_word(self, channel: DmaChannel, cycle: int) -> None:
        word = channel.source.pop_rx()
        progress = self._progress[channel.channel_id]
        address = channel.destination_address + 4 * progress
        if self.interconnect is not None:
            request = BusRequest(master=self.name, kind=TransferKind.WRITE, address=address, wdata=word)
            self.interconnect.submit(request)
            self._in_flight.append((channel, request))
        channel.words_moved += 1
        self.total_words_moved += 1
        self.record("words_moved")
        progress += 1
        if progress >= channel.length_words:
            progress = 0
            channel.transfers_completed += 1
            self.record("transfers_completed")
            if self.fabric is not None:
                self.fabric.pulse(self._event_lines[channel.channel_id])
        self._progress[channel.channel_id] = progress

    def _retire_writes(self) -> None:
        self._in_flight = [(channel, request) for channel, request in self._in_flight if not request.done]

    # ------------------------------------------------------------ wake protocol

    def next_event(self):
        # Quiescent only with no writes in flight and no channel that could
        # move a word; source FIFOs fill only in dense ticks, so this cannot
        # change inside a skipped span.
        if self._in_flight:
            return 1
        for channel in self.channels:
            if channel.enabled and channel.source.rx_level > 0:
                return 1
        return None

    def reset(self) -> None:
        for channel in self.channels:
            channel.words_moved = 0
            channel.transfers_completed = 0
        self._in_flight.clear()
        for channel_id in self._progress:
            self._progress[channel_id] = 0
        self.total_words_moved = 0
