"""µDMA — the autonomous I/O DMA engine of PULPissimo.

The µDMA decouples *data collection* from processing: it drains peripheral RX
FIFOs into the L2 memory without waking the core.  The paper's point is that
a µDMA alone is **not** sufficient for peripheral *linking* — the decision
step (threshold check, starting the next transfer) still needs the CPU or
PELS — which is exactly the workload the functional evaluation measures.
"""

from repro.dma.udma import DmaChannel, MicroDma

__all__ = ["DmaChannel", "MicroDma"]
