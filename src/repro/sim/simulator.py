"""The simulation kernel: dense (cycle-driven) and event-driven stepping.

The simulator owns the set of components, their clock domains, the activity
counters, and the trace recorder.  A simulation advances in *base ticks*: one
base tick corresponds to one cycle of the fastest clock domain; slower domains
tick on the cycles where their (integer) divisor divides the base tick index.

Two scheduling modes share that time base:

* **Dense mode** (``dense=True``) is the legacy cycle-driven kernel: every
  component's :meth:`~repro.sim.component.Component.tick` is called on every
  cycle of its domain.  It is the reference semantics and the baseline the
  differential test-suite compares against.
* **Event-driven mode** (the default) computes the earliest pending wake
  across all clock domains and jumps the base-tick counter over the provably
  quiescent span in between.  The skipped ticks are replayed in one batch per
  component through :meth:`~repro.sim.component.Component.skip`, so final
  state, activity counters, and traces are cycle-exact — identical to dense
  stepping — while idle-heavy scenarios (the always-on monitoring workloads
  the paper is about) run orders of magnitude fewer Python-level tick calls.

The event-driven mode resolves wakes in two tiers:

* components flagged :attr:`~repro.sim.component.Component.wake_cacheable`
  have their :meth:`~repro.sim.component.Component.next_event` horizon cached
  as an **absolute base-tick deadline** in a lazy min-heap.  The cache entry
  is only recomputed when the component itself invalidates it through
  :meth:`~repro.sim.component.Component.wake_changed` (register writes, event
  inputs) or when its deadline fires — so a quiescent span costs O(active
  components), not O(all components);
* all other hinted components are *volatile* and re-polled at every wake
  boundary, which is exactly the pre-cache behaviour and the safe default
  for reactive wakes (buses, DMA, CPU, PELS).

**Plan vs. state.**  The kernel splits its scheduling data in two:

* :class:`SchedulePlan` is the **immutable, shareable** half: which
  components tick, which are volatile/cached, which must be replayed on a
  skip, which clock-domain slot each belongs to, and whether anything forces
  dense stepping.  Plans are *structural* — they reference components by
  position, never by object — and are interned process-wide, so every
  simulator instance of the same topology (every point of a sweep campaign,
  every instance in a :class:`~repro.sim.batch.BatchSimulator`) shares one
  plan object instead of re-deriving the classification per instance.
* :class:`SimState` is the **per-instance, mutable** half: the base-tick
  counter, the plan's index lists bound to this instance's component
  objects, the deadline heap and dirty set of the wake cache, the clock
  divisors, and the activity/trace recorders.

``cached_wakes=False`` disables the deadline cache (every hinted component
becomes volatile), which is how the benchmarks A/B the cached scheduler
against the legacy poll-everything kernel.

For the scenarios in this repository all active components share one domain,
but the multi-domain support is what lets the iso-latency experiment clock
PELS at 27 MHz while the reference Ibex system runs at 55 MHz; wake horizons
are expressed in domain-local cycles and converted to base ticks by the
scheduler.

See ``docs/simulator.md`` for the wake protocol, the invalidation contract,
and the dense-vs-event equivalence guarantee.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs import tracing
from repro.obs.metrics import KERNEL_STAT_KEYS, CounterSet
from repro.sim.activity import ActivityCounters
from repro.sim.clock import ClockDomain
from repro.sim.component import Component
from repro.sim.trace import TraceRecorder


class SimulationError(RuntimeError):
    """Raised for simulator misuse or when a run exceeds its cycle budget."""


class Simulator:
    """Coordinates clock domains and components and advances simulated time."""

    def __init__(
        self,
        default_frequency_hz: float = 55e6,
        dense: bool = False,
        cached_wakes: bool = True,
    ) -> None:
        #: When True, use the legacy cycle-driven kernel (tick every component
        #: on every cycle of its domain).  When False (default), skip over
        #: quiescent spans using the components' wake hints.  May be toggled
        #: between :meth:`step` calls; both modes produce identical state.
        self.dense = dense
        #: When False, disable the cached wake-horizon scheduler and re-poll
        #: every hinted component at every wake boundary (the pre-cache
        #: kernel).  Exists for A/B benchmarking and as an escape hatch.
        self.cached_wakes = cached_wakes
        self._domains: Dict[str, ClockDomain] = {}
        self._components: List[Tuple[Component, ClockDomain]] = []
        self._components_by_name: Dict[str, Component] = {}
        self._state = SimState()
        self._plan: Optional["SchedulePlan"] = None
        self._fastest_hz: float = 0.0
        self._default_domain = self.add_clock_domain("default", default_frequency_hz)

    # ------------------------------------------------------------- delegation

    @property
    def activity(self) -> ActivityCounters:
        """Per-instance switching-activity counters (live in :class:`SimState`)."""
        return self._state.activity

    @property
    def traces(self) -> TraceRecorder:
        """Per-instance signal traces (live in :class:`SimState`)."""
        return self._state.traces

    @property
    def kernel_stats(self) -> Dict[str, int]:
        """Scheduler instrumentation: ``next_event_calls`` (wake polls),
        ``dense_ticks``, ``spans_skipped``, ``cycles_skipped``,
        ``plan_builds`` (plan resolutions for this instance), and
        ``plan_shared`` (resolutions satisfied by the process-wide interned
        plan of an identical topology).  Monotonic; cleared by :meth:`reset`.
        """
        return self._state.kernel_stats

    @property
    def state(self) -> "SimState":
        """This instance's mutable scheduling state."""
        return self._state

    # ----------------------------------------------------------------- domains

    def add_clock_domain(self, name: str, frequency_hz: float) -> ClockDomain:
        """Create and register a clock domain."""
        if name in self._domains:
            raise SimulationError(f"clock domain {name!r} already exists")
        domain = ClockDomain(name, frequency_hz)
        self._domains[name] = domain
        if frequency_hz > self._fastest_hz:
            self._fastest_hz = frequency_hz
        self._plan = None
        return domain

    def clock_domain(self, name: str) -> ClockDomain:
        """Look up a registered clock domain by name."""
        try:
            return self._domains[name]
        except KeyError as exc:
            raise SimulationError(f"unknown clock domain {name!r}") from exc

    @property
    def default_domain(self) -> ClockDomain:
        """The domain components are added to when none is specified."""
        return self._default_domain

    @property
    def domains(self) -> Tuple[ClockDomain, ...]:
        """All registered clock domains."""
        return tuple(self._domains.values())

    # -------------------------------------------------------------- components

    def add_component(self, component: Component, domain: Optional[ClockDomain] = None) -> Component:
        """Register a component with the simulator and a clock domain."""
        if component.name in self._components_by_name:
            raise SimulationError(f"a component named {component.name!r} is already registered")
        clock = domain if domain is not None else self._default_domain
        if clock.name not in self._domains:
            raise SimulationError(f"clock domain {clock.name!r} is not registered with this simulator")
        component.attach(self, clock)
        self._components.append((component, clock))
        self._components_by_name[component.name] = component
        self._plan = None
        return component

    def component(self, name: str) -> Component:
        """Look up a registered component by name (O(1))."""
        try:
            return self._components_by_name[name]
        except KeyError as exc:
            raise SimulationError(f"unknown component {name!r}") from exc

    @property
    def components(self) -> Tuple[Component, ...]:
        """All registered components, in registration order."""
        return tuple(component for component, _ in self._components)

    # ------------------------------------------------------------------ timing

    @property
    def current_cycle(self) -> int:
        """Base-tick counter (cycles of the fastest domain)."""
        return self._state.base_tick

    def _fastest_frequency(self) -> float:
        # Domains are dataclasses whose frequency is mutable, and this is
        # only called from run_for_time (once per call) — recompute live so
        # a frequency change before the next step cannot go stale.  The hot
        # paths use the state's divisors, refreshed on snapshot change.
        fastest = max(domain.frequency_hz for domain in self._domains.values())
        self._fastest_hz = fastest
        return fastest

    def _divisor(self, domain: ClockDomain, fastest_hz: Optional[float] = None) -> int:
        """Integer ratio between the fastest clock and ``domain``.

        The integrality check uses a *relative* tolerance: the float error of
        a legitimate large ratio (e.g. 1 GHz against a 32.768 kHz RTC domain,
        a 30518:1 ratio) grows with the ratio itself, so an absolute window
        would wrongly reject valid integer ratios at large divisors — and the
        same fixed window is far too forgiving at small ones, accepting
        near-miss frequencies (55 MHz against 27.500014 MHz) that silently
        drift the slow domain by a cycle over long horizons.
        """
        fastest = self._fastest_hz if fastest_hz is None else fastest_hz
        ratio = fastest / domain.frequency_hz
        divisor = round(ratio)
        if divisor < 1 or abs(ratio - divisor) > 1e-9 * divisor:
            raise SimulationError(
                f"clock domain {domain.name!r} frequency must divide the fastest domain"
            )
        return divisor

    def _schedule_plan(self) -> "SchedulePlan":
        """The (interned) schedule plan, re-resolved only when stale.

        A plan goes stale when the component set changes (tracked eagerly by
        :meth:`add_component`/:meth:`add_clock_domain`) or when a component's
        hook overrides change — e.g. a test double assigning ``tick`` on the
        instance after registration — which the cheap fingerprint check
        detects at the next :meth:`step`/:meth:`run_until` entry.  Because the
        fingerprint is purely structural, resolution first consults the
        process-wide intern table: a second simulator of the same topology
        (another sweep point, another batch instance) binds the existing plan
        instead of rebuilding the classification.  Clock ratios are
        re-validated on every call (frequencies are mutable), but recomputed
        only when they actually changed.
        """
        plan = self._plan
        state = self._state
        if plan is None or plan.fingerprint != SchedulePlan.compute_fingerprint(self):
            tracer = tracing.TRACER
            start_ns = tracer.now_ns() if tracer is not None else 0
            plan, shared, evicted = SchedulePlan.resolve(self)
            self._plan = plan
            state.kernel_stats["plan_builds"] += 1
            if shared:
                state.kernel_stats["plan_shared"] += 1
            if evicted:
                state.kernel_stats["plan_evictions"] += evicted
            if tracer is not None:
                tracer.event(
                    "kernel.plan",
                    "kernel",
                    start_ns,
                    tracer.now_ns() - start_ns,
                    {"shared": shared, "components": plan.n_components},
                )
        if state.bound_plan is not plan:
            state.bind(plan, self._components)
        state.refresh_divisors(self)
        return plan

    def _notify_wake_changed(self, component: Component) -> None:
        """Invalidate ``component``'s cached wake deadline (if it has one)."""
        self._state.invalidate_wake(component)

    # --------------------------------------------------------------------- run

    def advance_span(self, limit: int) -> int:
        """Advance past one span boundary; return the base ticks advanced.

        One call performs exactly one iteration of the event-driven stepping
        loop: skip the current quiescent span (capped at ``limit``) and, if
        the span ended before ``limit``, execute the dense tick at the wake
        boundary.  ``step(n)`` is equivalent to a loop over this primitive,
        and :class:`~repro.sim.batch.BatchSimulator` uses it to interleave
        many instances at span granularity (re-resolving the plan only at
        entry, like :meth:`step` does).  In dense mode (or when an unhinted
        ticking component forces it) the call runs ``limit`` dense ticks.

        Returns a value in ``[1, limit]`` for ``limit >= 1`` and ``0`` for
        ``limit == 0``.
        """
        if limit < 0:
            raise SimulationError("cannot advance a negative number of cycles")
        if limit == 0:
            return 0
        plan = self._schedule_plan()
        return self._state.advance_span(limit, dense=self.dense or plan.forces_dense)

    def step(self, cycles: int = 1) -> None:
        """Advance the simulation by ``cycles`` base ticks.

        In dense mode every component is ticked on every cycle of its domain.
        In event-driven mode quiescent spans are skipped; the end state after
        ``step(n)`` is identical in both modes.
        """
        if cycles < 0:
            raise SimulationError("cannot step a negative number of cycles")
        if cycles == 0:
            return
        plan = self._schedule_plan()
        state = self._state
        # One global fetch per step() call; when no tracer is installed the
        # loops below are the untouched hot paths (the disabled-telemetry
        # overhead benchmark holds this to <5% of the raw span loop).
        tracer = tracing.TRACER
        if self.dense or plan.forces_dense:
            if tracer is None:
                for _ in range(cycles):
                    state.dense_tick()
                return
            start_ns = tracer.now_ns()
            for _ in range(cycles):
                state.dense_tick()
            tracer.event(
                "kernel.dense", "kernel", start_ns, tracer.now_ns() - start_ns, {"cycles": cycles}
            )
            return
        remaining = cycles
        if tracer is None:
            while remaining > 0:
                remaining -= state.advance_span(remaining, dense=False)
            return
        stats = state.kernel_stats
        while remaining > 0:
            start_ns = tracer.now_ns()
            skipped_before = stats["cycles_skipped"]
            advanced = state.advance_span(remaining, dense=False)
            tracer.event(
                "kernel.span",
                "kernel",
                start_ns,
                tracer.now_ns() - start_ns,
                {"cycles": advanced, "skipped": stats["cycles_skipped"] - skipped_before},
            )
            remaining -= advanced

    def run_until(
        self,
        condition: Callable[[], bool],
        max_cycles: int = 1_000_000,
        label: str = "condition",
    ) -> int:
        """Step until ``condition()`` is true; return the number of cycles stepped.

        Raises :class:`SimulationError` if the condition does not become true
        within ``max_cycles``.  In event-driven mode the condition is
        re-evaluated at every wake boundary (and after every dense tick), so
        conditions that flip on observable events are detected on the exact
        cycle; a condition watching a counter that advances *inside* a
        quiescent span (e.g. a raw COUNT register, or the side effects of an
        event line nothing observes) is only seen at the span's end — use
        ``dense=True`` for cycle-level polling of such state.
        """
        tracer = tracing.TRACER
        if tracer is None:
            return self._run_until(condition, max_cycles, label)
        start_ns = tracer.now_ns()
        before = self._state.base_tick
        try:
            return self._run_until(condition, max_cycles, label)
        finally:
            tracer.event(
                "kernel.run_until",
                "kernel",
                start_ns,
                tracer.now_ns() - start_ns,
                {"label": label, "cycles": self._state.base_tick - before},
            )

    def _run_until(
        self,
        condition: Callable[[], bool],
        max_cycles: int,
        label: str,
    ) -> int:
        state = self._state
        start = state.base_tick
        plan = self._schedule_plan()
        event_driven = not (self.dense or plan.forces_dense)
        while not condition():
            elapsed = state.base_tick - start
            if elapsed >= max_cycles:
                raise SimulationError(
                    f"{label} not reached within {max_cycles} cycles"
                )
            if event_driven:
                span = state.quiescent_span(max_cycles - elapsed)
                if span > 0:
                    state.skip_span(span)
                    continue
            state.dense_tick()
        return state.base_tick - start

    def run_for_time(self, seconds: float) -> int:
        """Run for a wall-clock duration measured in the fastest domain.

        The duration is converted with ``round()`` so a period that is an
        exact multiple of the clock period never loses a cycle to binary
        floating-point truncation (e.g. ``3 * (1 / 55e6)`` seconds is exactly
        3 cycles, not 2).
        """
        cycles = int(round(seconds * self._fastest_frequency()))
        self.step(cycles)
        return cycles

    def reset(self) -> None:
        """Reset every component, clock domain, and all bookkeeping.

        The trace recorder is cleared *in place* so references held by
        callers (analysis code, open timelines) keep observing the simulator
        instead of silently going stale.
        """
        for component, _ in self._components:
            component.reset()
        for domain in self._domains.values():
            domain.reset()
        self._state.reset()

    # ------------------------------------------------------------------- trace

    def trace(self, signal: str, value: object) -> None:
        """Record a value change of ``signal`` at the current base tick."""
        state = self._state
        state.traces.record(state.base_tick, signal, value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = "dense" if self.dense else "event-driven"
        return (
            f"Simulator(cycle={self._state.base_tick}, components={len(self._components)}, "
            f"domains={[d.name for d in self._domains.values()]}, mode={mode})"
        )


#: Upper bound on the process-wide plan intern table.  A sweep campaign
#: contributes exactly one topology, so this is generous for batch workers —
#: the cap exists for long-lived processes (a fleet controller, a future HTTP
#: server) that resolve plans for many unrelated topologies over their
#: lifetime.  Evictions are charged to ``kernel_stats["plan_evictions"]`` on
#: the simulator whose resolution crossed the bound.
PLAN_INTERN_CAPACITY = 128

#: Process-wide intern table of structural plans: every simulator whose
#: topology hashes to the same fingerprint shares one plan object.  Ordered
#: as an LRU (hits reinsert their key), bounded by
#: :data:`PLAN_INTERN_CAPACITY`.
_PLAN_INTERN: Dict[Tuple, "SchedulePlan"] = {}


class SchedulePlan:
    """Immutable, shareable stepping schedule for one component topology.

    The plan classifies components by which hooks are actually overridden so
    the hot loops only visit objects that can have an effect:

    * ``ticking`` — positions of components with a real
      :meth:`Component.tick` (a default tick is a no-op by definition and is
      never called);
    * ``volatile`` — positions of hinted components re-polled at every wake
      boundary (reactive wakes, plus everything when ``cached_wakes`` is
      off);
    * ``cached`` — positions of hinted components flagged ``wake_cacheable``,
      whose horizons live in the per-instance deadline heap and are
      recomputed only on invalidation or deadline expiry;
    * ``skippers`` — positions of components with a real
      :meth:`Component.skip` (the only ones a skipped span must be replayed
      on).

    A component that ticks but gives no wake hint forces dense stepping
    (``forces_dense``), in which case the event-driven loops are bypassed
    entirely instead of recomputing a zero-length span every cycle.

    Everything here is **structural**: component *positions* (registration
    order) and domain *slots* (first-appearance order), never component or
    domain objects.  Two simulators with the same topology — same component
    types, hook overrides, cacheability, domain-slot pattern, and cache
    toggle — produce equal fingerprints and share one interned plan; each
    instance binds the positions to its own objects in its
    :class:`SimState`.  A plan is never mutated after construction.
    """

    __slots__ = (
        "fingerprint",
        "ticking",
        "volatile",
        "cached",
        "skippers",
        "forces_dense",
        "n_components",
    )

    @staticmethod
    def _overrides(component: Component, name: str) -> bool:
        """Whether ``component`` provides its own ``name`` hook — via its
        class *or* as an instance attribute (test doubles, monkey-patches)."""
        return (
            getattr(type(component), name) is not getattr(Component, name)
            or name in component.__dict__
        )

    @staticmethod
    def compute_fingerprint(simulator: Simulator) -> Tuple:
        """Structural staleness-and-sharing signature.

        Covers everything the classification depends on — component types,
        hook overrides (class- or instance-level), cacheability, the
        domain-slot pattern, and the cache toggle (so flipping
        ``cached_wakes`` between steps takes effect, like the ``dense`` flag
        does) — and nothing instance-specific, so simulators of identical
        topology share one interned plan.
        """
        overrides = SchedulePlan._overrides
        slots: Dict[str, int] = {}
        entries = []
        for component, clock in simulator._components:
            slot = slots.setdefault(clock.name, len(slots))
            entries.append(
                (
                    type(component),
                    overrides(component, "tick"),
                    overrides(component, "next_event"),
                    overrides(component, "skip"),
                    bool(component.wake_cacheable),
                    slot,
                )
            )
        return (simulator.cached_wakes, tuple(entries))

    @classmethod
    def resolve(cls, simulator: Simulator) -> Tuple["SchedulePlan", bool, int]:
        """Return the interned plan for ``simulator``'s topology.

        The second element reports whether the plan was shared from the
        intern table (True) or built fresh (False); the third is how many
        older plans the insertion evicted (zero on a hit).
        """
        fingerprint = cls.compute_fingerprint(simulator)
        plan = _PLAN_INTERN.get(fingerprint)
        if plan is not None:
            del _PLAN_INTERN[fingerprint]  # LRU refresh: reinsert as newest
            _PLAN_INTERN[fingerprint] = plan
            return plan, True, 0
        return cls.adopt(cls(fingerprint))

    @classmethod
    def adopt(cls, plan: "SchedulePlan") -> Tuple["SchedulePlan", bool, int]:
        """Intern ``plan``, or return the already-interned equal plan.

        The canonical entry point for plans that arrive from *outside* a
        live resolution — a deserialised snapshot header
        (:mod:`repro.sim.snapshot`) re-enters the intern table here so a
        later same-topology :meth:`resolve` counts ``plan_shared`` instead
        of rebuilding.  Returns ``(canonical_plan, shared, evictions)``
        with the same meaning as :meth:`resolve`.
        """
        existing = _PLAN_INTERN.get(plan.fingerprint)
        if existing is not None:
            del _PLAN_INTERN[plan.fingerprint]
            _PLAN_INTERN[plan.fingerprint] = existing
            return existing, True, 0
        _PLAN_INTERN[plan.fingerprint] = plan
        evicted = 0
        while len(_PLAN_INTERN) > PLAN_INTERN_CAPACITY:
            del _PLAN_INTERN[next(iter(_PLAN_INTERN))]
            evicted += 1
        return plan, False, evicted

    def __init__(self, fingerprint: Tuple) -> None:
        self.fingerprint = fingerprint
        _, entries = fingerprint
        cached_wakes = fingerprint[0]
        ticking: List[int] = []
        volatile: List[int] = []
        cached: List[int] = []
        skippers: List[int] = []
        forces_dense = False
        for index, (_, ticks, hinted, skips, cacheable, _) in enumerate(entries):
            if ticks:
                ticking.append(index)
                if not hinted:
                    forces_dense = True
            if hinted:
                if cached_wakes and cacheable:
                    cached.append(index)
                else:
                    volatile.append(index)
            if skips:
                skippers.append(index)
        self.ticking = tuple(ticking)
        self.volatile = tuple(volatile)
        self.cached = tuple(cached)
        self.skippers = tuple(skippers)
        self.forces_dense = forces_dense
        self.n_components = len(entries)


#: Sentinel stored in an attached wake-deadline column for "no deadline"
#: (``deadlines[i] is None``).  Large enough that ``WAKE_NONE - base_tick``
#: never caps a span, small enough that int64 column arithmetic cannot
#: overflow.
WAKE_NONE = 1 << 62


class SimState:
    """Per-instance mutable scheduling state.

    Owns everything that differs between two simulators sharing a
    :class:`SchedulePlan`: the base-tick counter, the plan's component
    positions bound to this instance's objects, the wake-deadline cache, the
    clock-ratio snapshot, and the activity/trace recorders.

    **Deadline cache.**  ``deadlines[i]`` is the authoritative absolute base
    tick at which cached component ``i`` next needs a dense tick (``None`` =
    no self-scheduled wake).  ``_heap`` holds ``(deadline, i)`` entries and is
    lazy: stale entries (whose deadline no longer matches the authoritative
    array) are discarded on peek.  ``_dirty`` indexes are re-polled at the
    next boundary.  Absolute deadlines survive skips unchanged — only firing
    (deadline expiry, detected in :meth:`dense_tick`) or an explicit
    :meth:`invalidate_wake` moves them.

    **Column extraction (batched execution).**  A struct-of-arrays batch
    backend (:mod:`repro.sim.backend`) may hand this instance one row of a
    shared int64 deadline matrix via :meth:`attach_wake_row`.  The row then
    mirrors the authoritative ``deadlines`` list at every mutation site
    (re-poll, expiry, cache clear) with :data:`WAKE_NONE` standing in for
    ``None``, so the backend computes every instance's earliest cached wake
    as one vectorised row-min instead of a per-instance heap peek.  The heap
    keeps running regardless — it still drives deadline expiry in
    :meth:`dense_tick` and the solo stepping path.
    """

    def __init__(self) -> None:
        self.base_tick = 0
        self.activity = ActivityCounters()
        self.traces = TraceRecorder()
        # The canonical scheduler counters: the key set is defined once in
        # repro.obs.metrics (KERNEL_STAT_KEYS) and shared by every kernel
        # and batch backend; writing an undeclared key raises at the
        # increment site (tests/sim/test_kernel_stat_keys.py pins the set).
        self.kernel_stats: CounterSet = CounterSet(KERNEL_STAT_KEYS)
        #: The plan these bound lists were derived from (identity-compared).
        self.bound_plan: Optional[SchedulePlan] = None
        self.ticking: List[Tuple[Component, ClockDomain]] = []
        self.volatile: List[Tuple[Component, ClockDomain]] = []
        self.cached: List[Tuple[Component, ClockDomain]] = []
        self.skippers: List[Tuple[Component, ClockDomain]] = []
        self.clocks: List[ClockDomain] = []
        self.divisors: Dict[str, int] = {}
        self.single_rate = True
        self._freq_snapshot: Optional[Tuple[float, ...]] = None
        self._cache_index: Dict[Component, int] = {}
        self.deadlines: List[Optional[int]] = []
        self._dirty: set = set()
        self._heap: List[Tuple[int, int]] = []
        #: Optional backend-owned int64 row mirroring ``deadlines``
        #: (:data:`WAKE_NONE` for ``None``); see :meth:`attach_wake_row`.
        self._wake_row = None
        #: Component whose tick()/skip() is currently executing; its *self*
        #: invalidations are suppressed (see invalidate_wake).
        self._active_component: Optional[Component] = None

    def __getstate__(self) -> Dict[str, object]:
        # Prepared-state snapshots (repro.sim.snapshot) pickle whole
        # simulators between processes and across batch backends.  The wake
        # row is a backend-owned view into a shared deadline matrix — the
        # authoritative ``deadlines`` list carries the same information, and
        # whichever backend runs the restored instance re-attaches its own
        # row.  ``_active_component`` only ever holds a value *during* a
        # tick/skip dispatch, never at a stop boundary.
        state = self.__dict__.copy()
        state["_wake_row"] = None
        state["_active_component"] = None
        return state

    # ----------------------------------------------------------------- binding

    def bind(self, plan: SchedulePlan, pairs: Sequence[Tuple[Component, ClockDomain]]) -> None:
        """Bind ``plan``'s component positions to this instance's objects."""
        self.bound_plan = plan
        # A rebind can change the cached-component count; an attached wake
        # row has the old width and must not survive it.
        self._wake_row = None
        self.ticking = [pairs[index] for index in plan.ticking]
        self.volatile = [pairs[index] for index in plan.volatile]
        self.cached = [pairs[index] for index in plan.cached]
        self.skippers = [pairs[index] for index in plan.skippers]
        clocks: Dict[str, ClockDomain] = {}
        for _, clock in pairs:
            clocks.setdefault(clock.name, clock)
        self.clocks = list(clocks.values())
        self._freq_snapshot = None  # divisors refreshed on next resolution
        self._cache_index = {component: index for index, (component, _) in enumerate(self.cached)}
        self.clear_wake_cache()

    def refresh_divisors(self, simulator: Simulator) -> None:
        """Recompute clock ratios only when a frequency actually changed.

        The snapshot covers *all* simulator domains, not just those with
        components: the base tick is defined by the fastest domain overall,
        so a frequency change on a component-less domain still moves every
        divisor.
        """
        snapshot = tuple(domain.frequency_hz for domain in simulator._domains.values())
        if snapshot == self._freq_snapshot:
            return
        fastest = max(snapshot, default=simulator._fastest_hz)
        simulator._fastest_hz = fastest
        self.divisors = {
            clock.name: simulator._divisor(clock, fastest) for clock in self.clocks
        }
        self.single_rate = all(divisor == 1 for divisor in self.divisors.values())
        self._freq_snapshot = snapshot
        # Deadlines were computed with the old ratios; recompute lazily.
        self.clear_wake_cache()

    # ------------------------------------------------------------- invalidation

    def invalidate_wake(self, component: Component) -> None:
        """Mark one cached component's deadline stale (O(1)).

        Invalidations a component raises about *itself* while its own
        ``tick``/``skip`` runs are ignored: the wake contract guarantees the
        ticks before its deadline evolve state uniformly (the absolute
        deadline stays valid — e.g. a watchdog decrementing its COUNT
        register), and the deadline tick itself is re-polled through the
        expiry sweep in :meth:`dense_tick`.  Cross-component invalidations
        (PELS delivering an event input, a CPU store hitting a peripheral
        register) are always honoured.
        """
        if component is self._active_component:
            return
        index = self._cache_index.get(component)
        if index is not None:
            self._dirty.add(index)

    def clear_wake_cache(self) -> None:
        """Drop every cached deadline (component set unchanged)."""
        self.deadlines = [None] * len(self.cached)
        self._dirty = set(range(len(self.cached)))
        self._heap = []
        if self._wake_row is not None:
            self._wake_row[:] = WAKE_NONE

    # ------------------------------------------------------------ wake columns

    def attach_wake_row(self, row) -> None:
        """Mirror this instance's cached deadlines into ``row``.

        ``row`` is one row of a batch backend's shared int64 deadline matrix
        (any mutable int sequence of length ``len(self.cached)``; in practice
        a numpy view).  From this call on, every deadline mutation —
        :meth:`_repoll`, the expiry sweep in :meth:`dense_tick`,
        :meth:`clear_wake_cache` — is written through to the row with
        :data:`WAKE_NONE` standing in for ``None``, so
        ``row.min() - base_tick`` is this instance's earliest cached wake
        gap.  Rebinding to a different plan detaches the row (its width would
        be stale).
        """
        if len(row) != len(self.cached):
            raise SimulationError(
                f"wake row has width {len(row)}, expected {len(self.cached)} "
                f"(one slot per cached component)"
            )
        self._wake_row = row
        for index, deadline in enumerate(self.deadlines):
            row[index] = WAKE_NONE if deadline is None else deadline

    def detach_wake_row(self) -> None:
        """Stop mirroring deadlines into the attached row (if any)."""
        self._wake_row = None

    def _repoll(self, index: int) -> None:
        """Recompute one cached component's absolute deadline."""
        component, clock = self.cached[index]
        horizon = component.next_event()
        row = self._wake_row
        if horizon is None:
            self.deadlines[index] = None
            if row is not None:
                row[index] = WAKE_NONE
            return
        if horizon < 1:
            horizon = 1
        base_tick = self.base_tick
        if self.single_rate:
            deadline = base_tick + horizon - 1
        else:
            divisor = self.divisors[clock.name]
            remainder = base_tick % divisor
            first = base_tick if remainder == 0 else base_tick + (divisor - remainder)
            deadline = first + (horizon - 1) * divisor
        self.deadlines[index] = deadline
        if row is not None:
            row[index] = deadline
        heappush(self._heap, (deadline, index))
        # Lazy heaps accumulate stale entries; compact when they dominate.
        if len(self._heap) > 4 * len(self.cached) + 16:
            self._heap = [
                (deadline, i)
                for i, deadline in enumerate(self.deadlines)
                if deadline is not None
            ]
            self._heap.sort()

    # ------------------------------------------------------------------ dense

    def dense_tick(self) -> None:
        """One base tick of the reference cycle-driven semantics."""
        if self.single_rate:
            for component, clock in self.ticking:
                self._active_component = component
                component.tick(clock.cycles)
            self._active_component = None
            for clock in self.clocks:
                clock.advance()
            self.base_tick += 1
        else:
            base_tick = self.base_tick
            divisors = self.divisors
            for component, clock in self.ticking:
                if base_tick % divisors[clock.name] == 0:
                    self._active_component = component
                    component.tick(clock.cycles)
            self._active_component = None
            for clock in self.clocks:
                if base_tick % divisors[clock.name] == 0:
                    clock.advance()
            self.base_tick += 1
        self.kernel_stats["dense_ticks"] += 1
        # Expire cached deadlines the tick just serviced: the component fired
        # (or was due), so its old promise is used up and it must be
        # re-polled at the next boundary.  Register-notify usually marks it
        # dirty already; this sweep is the guaranteed path.
        heap = self._heap
        if heap:
            base_tick = self.base_tick
            deadlines = self.deadlines
            dirty = self._dirty
            row = self._wake_row
            while heap:
                deadline, index = heap[0]
                if deadlines[index] != deadline:
                    heappop(heap)  # stale entry
                    continue
                if deadline >= base_tick:
                    break
                heappop(heap)
                deadlines[index] = None
                if row is not None:
                    row[index] = WAKE_NONE
                dirty.add(index)

    # ------------------------------------------------------------ event-driven

    def advance_span(self, limit: int, dense: bool) -> int:
        """One iteration of the stepping loop against already-bound state.

        The caller (``Simulator.step``/``advance_span``,
        :class:`~repro.sim.batch.BatchSimulator`) is responsible for having
        resolved the schedule plan first; this is the hot path and performs
        no staleness checks.
        """
        if dense:
            for _ in range(limit):
                self.dense_tick()
            return limit
        span = self.quiescent_span(limit)
        if span > 0:
            self.skip_span(span)
        if span < limit:
            self.dense_tick()
            span += 1
        return span

    def quiescent_span(self, limit: int) -> int:
        """Base ticks until the earliest pending wake, capped at ``limit``.

        Returns 0 when some component needs a dense tick right now.  A wake of
        ``k`` domain cycles from a component whose domain next ticks at base
        tick ``first`` pins the wake to base tick ``first + (k - 1) * div``;
        everything before that is quiescent by the component's promise.

        Composed from :meth:`poll_dirty` + :meth:`volatile_bound` + the lazy
        heap peek over cached deadlines; batch backends call the first two
        directly and replace the peek with a vectorised row-min over attached
        wake rows (same value by construction — the row mirrors
        ``deadlines``).
        """
        self.poll_dirty()
        span = self.volatile_bound(limit)
        if span == 0:
            return 0
        # Earliest cached deadline (lazy heap peek).
        base_tick = self.base_tick
        heap = self._heap
        deadlines = self.deadlines
        while heap:
            deadline, index = heap[0]
            if deadlines[index] != deadline:
                heappop(heap)
                continue
            gap = deadline - base_tick
            if gap <= 0:
                return 0
            if gap < span:
                span = gap
            break
        return span

    def poll_dirty(self) -> None:
        """Re-poll invalidated cached components (O(active))."""
        dirty = self._dirty
        if dirty:
            self.kernel_stats["next_event_calls"] += len(dirty)
            for index in tuple(dirty):
                self._repoll(index)
            dirty.clear()

    def volatile_bound(self, limit: int) -> int:
        """Span cap from the volatile components alone, in ``[0, limit]``.

        Returns 0 when a volatile component needs a dense tick right now.
        Does **not** consult the cached-deadline heap — callers combine this
        with the heap peek (:meth:`quiescent_span`) or with a wake-row min
        (the numpy batch backend).
        """
        stats = self.kernel_stats
        base_tick = self.base_tick
        span = limit
        volatile = self.volatile
        if self.single_rate:
            for index, (component, _) in enumerate(volatile):
                horizon = component.next_event()
                if horizon is not None and horizon <= span:
                    if horizon <= 1:
                        # Move the blocking component to the front: in a busy
                        # stretch the same component usually blocks for many
                        # consecutive cycles, and probing it first turns the
                        # full wake sweep into a single call.
                        if index:
                            volatile.insert(0, volatile.pop(index))
                        stats["next_event_calls"] += index + 1
                        return 0
                    span = horizon - 1
        else:
            divisors = self.divisors
            for index, (component, clock) in enumerate(volatile):
                horizon = component.next_event()
                if horizon is None:
                    continue
                if horizon < 1:
                    horizon = 1
                divisor = divisors[clock.name]
                remainder = base_tick % divisor
                first = base_tick if remainder == 0 else base_tick + (divisor - remainder)
                bound = first + (horizon - 1) * divisor - base_tick
                if bound < span:
                    if bound <= 0:
                        if index:
                            volatile.insert(0, volatile.pop(index))
                        stats["next_event_calls"] += index + 1
                        return 0
                    span = bound
        stats["next_event_calls"] += len(volatile)
        return span

    def skip_span(self, span: int) -> None:
        """Jump ``span`` quiescent base ticks, batch-applying skipped ticks."""
        stats = self.kernel_stats
        stats["spans_skipped"] += 1
        stats["cycles_skipped"] += span
        if self.single_rate:
            for component, _ in self.skippers:
                self._active_component = component
                component.skip(span)
            self._active_component = None
            for clock in self.clocks:
                clock.advance(span)
            self.base_tick += span
            return
        base_tick = self.base_tick
        divisors = self.divisors
        domain_ticks: Dict[str, int] = {}
        for clock in self.clocks:
            divisor = divisors[clock.name]
            remainder = base_tick % divisor
            first = base_tick if remainder == 0 else base_tick + (divisor - remainder)
            if first >= base_tick + span:
                count = 0
            else:
                count = (base_tick + span - 1 - first) // divisor + 1
            domain_ticks[clock.name] = count
        for component, clock in self.skippers:
            count = domain_ticks[clock.name]
            if count:
                self._active_component = component
                component.skip(count)
        self._active_component = None
        for clock in self.clocks:
            count = domain_ticks[clock.name]
            if count:
                clock.advance(count)
        self.base_tick += span

    # ------------------------------------------------------------------- reset

    def reset(self) -> None:
        """Rewind to cycle 0: clear counters, traces, stats, and deadlines.

        The activity counters and trace recorder are cleared *in place* so
        references held by callers keep observing the simulator.  Cached
        deadlines are absolute base ticks; rewinding time voids them.
        """
        self.activity.clear()
        self.traces.clear()
        self.base_tick = 0
        self.kernel_stats.reset()
        self.clear_wake_cache()


def build_simulator(
    frequency_hz: float, components: Sequence[Component] = (), dense: bool = False
) -> Simulator:
    """Convenience helper: create a simulator and register ``components``."""
    simulator = Simulator(default_frequency_hz=frequency_hz, dense=dense)
    for component in components:
        simulator.add_component(component)
    return simulator
