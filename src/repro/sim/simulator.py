"""The cycle-driven simulator.

The simulator owns the set of components, their clock domains, the activity
counters, and the trace recorder.  A simulation advances in *base ticks*: one
base tick corresponds to one cycle of the fastest clock domain; slower domains
tick on the cycles where their (integer) divisor divides the base tick index.

For the scenarios in this repository all active components share one domain,
but the multi-domain support is what lets the iso-latency experiment clock
PELS at 27 MHz while the reference Ibex system runs at 55 MHz.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.sim.activity import ActivityCounters
from repro.sim.clock import ClockDomain
from repro.sim.component import Component
from repro.sim.trace import TraceRecorder


class SimulationError(RuntimeError):
    """Raised for simulator misuse or when a run exceeds its cycle budget."""


class Simulator:
    """Coordinates clock domains and components and advances simulated time."""

    def __init__(self, default_frequency_hz: float = 55e6) -> None:
        self.activity = ActivityCounters()
        self.traces = TraceRecorder()
        self._domains: Dict[str, ClockDomain] = {}
        self._components: List[Tuple[Component, ClockDomain]] = []
        self._component_names: set[str] = set()
        self._base_tick = 0
        self._default_domain = self.add_clock_domain("default", default_frequency_hz)

    # ----------------------------------------------------------------- domains

    def add_clock_domain(self, name: str, frequency_hz: float) -> ClockDomain:
        """Create and register a clock domain."""
        if name in self._domains:
            raise SimulationError(f"clock domain {name!r} already exists")
        domain = ClockDomain(name, frequency_hz)
        self._domains[name] = domain
        return domain

    def clock_domain(self, name: str) -> ClockDomain:
        """Look up a registered clock domain by name."""
        try:
            return self._domains[name]
        except KeyError as exc:
            raise SimulationError(f"unknown clock domain {name!r}") from exc

    @property
    def default_domain(self) -> ClockDomain:
        """The domain components are added to when none is specified."""
        return self._default_domain

    @property
    def domains(self) -> Tuple[ClockDomain, ...]:
        """All registered clock domains."""
        return tuple(self._domains.values())

    # -------------------------------------------------------------- components

    def add_component(self, component: Component, domain: Optional[ClockDomain] = None) -> Component:
        """Register a component with the simulator and a clock domain."""
        if component.name in self._component_names:
            raise SimulationError(f"a component named {component.name!r} is already registered")
        clock = domain if domain is not None else self._default_domain
        if clock.name not in self._domains:
            raise SimulationError(f"clock domain {clock.name!r} is not registered with this simulator")
        component.attach(self, clock)
        self._components.append((component, clock))
        self._component_names.add(component.name)
        return component

    def component(self, name: str) -> Component:
        """Look up a registered component by name."""
        for component, _ in self._components:
            if component.name == name:
                return component
        raise SimulationError(f"unknown component {name!r}")

    @property
    def components(self) -> Tuple[Component, ...]:
        """All registered components, in registration order."""
        return tuple(component for component, _ in self._components)

    # ------------------------------------------------------------------ timing

    @property
    def current_cycle(self) -> int:
        """Base-tick counter (cycles of the fastest domain)."""
        return self._base_tick

    def _fastest_frequency(self) -> float:
        return max(domain.frequency_hz for domain in self._domains.values())

    def _divisor(self, domain: ClockDomain) -> int:
        """Integer ratio between the fastest clock and ``domain``."""
        ratio = self._fastest_frequency() / domain.frequency_hz
        divisor = round(ratio)
        if divisor < 1 or abs(ratio - divisor) > 1e-6:
            raise SimulationError(
                f"clock domain {domain.name!r} frequency must divide the fastest domain"
            )
        return divisor

    # --------------------------------------------------------------------- run

    def step(self, cycles: int = 1) -> None:
        """Advance the simulation by ``cycles`` base ticks."""
        if cycles < 0:
            raise SimulationError("cannot step a negative number of cycles")
        divisors = {clock.name: self._divisor(clock) for _, clock in self._components}
        for _ in range(cycles):
            for component, clock in self._components:
                if self._base_tick % divisors[clock.name] == 0:
                    component.tick(clock.cycles)
            ticked: set[str] = set()
            for _, clock in self._components:
                if clock.name not in ticked and self._base_tick % divisors[clock.name] == 0:
                    clock.advance()
                    ticked.add(clock.name)
            self._base_tick += 1

    def run_until(
        self,
        condition: Callable[[], bool],
        max_cycles: int = 1_000_000,
        label: str = "condition",
    ) -> int:
        """Step until ``condition()`` is true; return the number of cycles stepped.

        Raises :class:`SimulationError` if the condition does not become true
        within ``max_cycles``.
        """
        start = self._base_tick
        while not condition():
            if self._base_tick - start >= max_cycles:
                raise SimulationError(
                    f"{label} not reached within {max_cycles} cycles"
                )
            self.step()
        return self._base_tick - start

    def run_for_time(self, seconds: float) -> int:
        """Run for a wall-clock duration measured in the fastest domain."""
        cycles = int(seconds * self._fastest_frequency())
        self.step(cycles)
        return cycles

    def reset(self) -> None:
        """Reset every component, clock domain, and all bookkeeping."""
        for component, _ in self._components:
            component.reset()
        for domain in self._domains.values():
            domain.reset()
        self.activity.clear()
        self.traces = TraceRecorder()
        self._base_tick = 0

    # ------------------------------------------------------------------- trace

    def trace(self, signal: str, value: object) -> None:
        """Record a value change of ``signal`` at the current base tick."""
        self.traces.record(self._base_tick, signal, value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Simulator(cycle={self._base_tick}, components={len(self._components)}, "
            f"domains={[d.name for d in self._domains.values()]})"
        )


def build_simulator(frequency_hz: float, components: Sequence[Component] = ()) -> Simulator:
    """Convenience helper: create a simulator and register ``components``."""
    simulator = Simulator(default_frequency_hz=frequency_hz)
    for component in components:
        simulator.add_component(component)
    return simulator
