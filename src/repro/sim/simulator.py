"""The simulation kernel: dense (cycle-driven) and event-driven stepping.

The simulator owns the set of components, their clock domains, the activity
counters, and the trace recorder.  A simulation advances in *base ticks*: one
base tick corresponds to one cycle of the fastest clock domain; slower domains
tick on the cycles where their (integer) divisor divides the base tick index.

Two scheduling modes share that time base:

* **Dense mode** (``dense=True``) is the legacy cycle-driven kernel: every
  component's :meth:`~repro.sim.component.Component.tick` is called on every
  cycle of its domain.  It is the reference semantics and the baseline the
  differential test-suite compares against.
* **Event-driven mode** (the default) asks every component for its next wake
  via :meth:`~repro.sim.component.Component.next_event`, computes the earliest
  pending wake across all clock domains, and jumps the base-tick counter over
  the provably quiescent span in between.  The skipped ticks are replayed in
  one batch per component through
  :meth:`~repro.sim.component.Component.skip`, so final state, activity
  counters, and traces are cycle-exact — identical to dense stepping — while
  idle-heavy scenarios (the always-on monitoring workloads the paper is
  about) run orders of magnitude fewer Python-level tick calls.

For the scenarios in this repository all active components share one domain,
but the multi-domain support is what lets the iso-latency experiment clock
PELS at 27 MHz while the reference Ibex system runs at 55 MHz; wake horizons
are expressed in domain-local cycles and converted to base ticks by the
scheduler.

See ``docs/simulator.md`` for the wake protocol and the dense-vs-event
equivalence guarantee.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.sim.activity import ActivityCounters
from repro.sim.clock import ClockDomain
from repro.sim.component import Component
from repro.sim.trace import TraceRecorder


class SimulationError(RuntimeError):
    """Raised for simulator misuse or when a run exceeds its cycle budget."""


class Simulator:
    """Coordinates clock domains and components and advances simulated time."""

    def __init__(self, default_frequency_hz: float = 55e6, dense: bool = False) -> None:
        self.activity = ActivityCounters()
        self.traces = TraceRecorder()
        #: When True, use the legacy cycle-driven kernel (tick every component
        #: on every cycle of its domain).  When False (default), skip over
        #: quiescent spans using the components' wake hints.  May be toggled
        #: between :meth:`step` calls; both modes produce identical state.
        self.dense = dense
        self._domains: Dict[str, ClockDomain] = {}
        self._components: List[Tuple[Component, ClockDomain]] = []
        self._component_names: set[str] = set()
        self._base_tick = 0
        self._default_domain = self.add_clock_domain("default", default_frequency_hz)

    # ----------------------------------------------------------------- domains

    def add_clock_domain(self, name: str, frequency_hz: float) -> ClockDomain:
        """Create and register a clock domain."""
        if name in self._domains:
            raise SimulationError(f"clock domain {name!r} already exists")
        domain = ClockDomain(name, frequency_hz)
        self._domains[name] = domain
        return domain

    def clock_domain(self, name: str) -> ClockDomain:
        """Look up a registered clock domain by name."""
        try:
            return self._domains[name]
        except KeyError as exc:
            raise SimulationError(f"unknown clock domain {name!r}") from exc

    @property
    def default_domain(self) -> ClockDomain:
        """The domain components are added to when none is specified."""
        return self._default_domain

    @property
    def domains(self) -> Tuple[ClockDomain, ...]:
        """All registered clock domains."""
        return tuple(self._domains.values())

    # -------------------------------------------------------------- components

    def add_component(self, component: Component, domain: Optional[ClockDomain] = None) -> Component:
        """Register a component with the simulator and a clock domain."""
        if component.name in self._component_names:
            raise SimulationError(f"a component named {component.name!r} is already registered")
        clock = domain if domain is not None else self._default_domain
        if clock.name not in self._domains:
            raise SimulationError(f"clock domain {clock.name!r} is not registered with this simulator")
        component.attach(self, clock)
        self._components.append((component, clock))
        self._component_names.add(component.name)
        return component

    def component(self, name: str) -> Component:
        """Look up a registered component by name."""
        for component, _ in self._components:
            if component.name == name:
                return component
        raise SimulationError(f"unknown component {name!r}")

    @property
    def components(self) -> Tuple[Component, ...]:
        """All registered components, in registration order."""
        return tuple(component for component, _ in self._components)

    # ------------------------------------------------------------------ timing

    @property
    def current_cycle(self) -> int:
        """Base-tick counter (cycles of the fastest domain)."""
        return self._base_tick

    def _fastest_frequency(self) -> float:
        return max(domain.frequency_hz for domain in self._domains.values())

    def _divisor(self, domain: ClockDomain) -> int:
        """Integer ratio between the fastest clock and ``domain``."""
        ratio = self._fastest_frequency() / domain.frequency_hz
        divisor = round(ratio)
        if divisor < 1 or abs(ratio - divisor) > 1e-6:
            raise SimulationError(
                f"clock domain {domain.name!r} frequency must divide the fastest domain"
            )
        return divisor

    def _schedule_plan(self) -> "_SchedulePlan":
        """Classify components so the stepping loops touch only the objects
        that can matter.  Rebuilt per :meth:`step`/:meth:`run_until` call —
        cheap, and it keeps late additions and instance-level ``tick``
        monkey-patches (test doubles) visible, exactly as dense iteration
        over the raw component list would."""
        plan = _SchedulePlan(self)
        plan.refresh_divisors(self)
        return plan

    # --------------------------------------------------------------------- run

    def step(self, cycles: int = 1) -> None:
        """Advance the simulation by ``cycles`` base ticks.

        In dense mode every component is ticked on every cycle of its domain.
        In event-driven mode quiescent spans are skipped; the end state after
        ``step(n)`` is identical in both modes.
        """
        if cycles < 0:
            raise SimulationError("cannot step a negative number of cycles")
        plan = self._schedule_plan()
        if self.dense or plan.forces_dense:
            for _ in range(cycles):
                plan.dense_tick(self)
            return
        remaining = cycles
        while remaining > 0:
            span = plan.quiescent_span(self, remaining)
            if span > 0:
                plan.skip_span(self, span)
                remaining -= span
            if remaining > 0:
                plan.dense_tick(self)
                remaining -= 1

    def run_until(
        self,
        condition: Callable[[], bool],
        max_cycles: int = 1_000_000,
        label: str = "condition",
    ) -> int:
        """Step until ``condition()`` is true; return the number of cycles stepped.

        Raises :class:`SimulationError` if the condition does not become true
        within ``max_cycles``.  In event-driven mode the condition is
        re-evaluated at every wake boundary (and after every dense tick), so
        conditions that flip on observable events are detected on the exact
        cycle; a condition watching a counter that advances *inside* a
        quiescent span (e.g. a raw COUNT register) is only seen at the span's
        end — use ``dense=True`` for cycle-level polling of such state.
        """
        start = self._base_tick
        plan = self._schedule_plan()
        event_driven = not (self.dense or plan.forces_dense)
        while not condition():
            elapsed = self._base_tick - start
            if elapsed >= max_cycles:
                raise SimulationError(
                    f"{label} not reached within {max_cycles} cycles"
                )
            if event_driven:
                span = plan.quiescent_span(self, max_cycles - elapsed)
                if span > 0:
                    plan.skip_span(self, span)
                    continue
            plan.dense_tick(self)
        return self._base_tick - start

    def run_for_time(self, seconds: float) -> int:
        """Run for a wall-clock duration measured in the fastest domain.

        The duration is converted with ``round()`` so a period that is an
        exact multiple of the clock period never loses a cycle to binary
        floating-point truncation (e.g. ``3 * (1 / 55e6)`` seconds is exactly
        3 cycles, not 2).
        """
        cycles = int(round(seconds * self._fastest_frequency()))
        self.step(cycles)
        return cycles

    def reset(self) -> None:
        """Reset every component, clock domain, and all bookkeeping.

        The trace recorder is cleared *in place* so references held by
        callers (analysis code, open timelines) keep observing the simulator
        instead of silently going stale.
        """
        for component, _ in self._components:
            component.reset()
        for domain in self._domains.values():
            domain.reset()
        self.activity.clear()
        self.traces.clear()
        self._base_tick = 0

    # ------------------------------------------------------------------- trace

    def trace(self, signal: str, value: object) -> None:
        """Record a value change of ``signal`` at the current base tick."""
        self.traces.record(self._base_tick, signal, value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = "dense" if self.dense else "event-driven"
        return (
            f"Simulator(cycle={self._base_tick}, components={len(self._components)}, "
            f"domains={[d.name for d in self._domains.values()]}, mode={mode})"
        )


class _SchedulePlan:
    """Precomputed stepping schedule for one set of registered components.

    Splits the component list by which hooks are actually overridden so the
    hot loops only visit objects that can have an effect:

    * ``ticking`` — components with a real :meth:`Component.tick` (a default
      tick is a no-op by definition and is never called);
    * ``hinted`` — components that advertise wakes via
      :meth:`Component.next_event` (consulted by the wake sweep);
    * ``skippers`` — components with a real :meth:`Component.skip` (the only
      ones a skipped span must be replayed on).

    A component that ticks but gives no wake hint forces dense stepping
    (``forces_dense``), in which case the event-driven loops are bypassed
    entirely instead of recomputing a zero-length span every cycle.
    """

    @staticmethod
    def _overrides(component: Component, name: str) -> bool:
        """Whether ``component`` provides its own ``name`` hook — via its
        class *or* as an instance attribute (test doubles, monkey-patches)."""
        return (
            getattr(type(component), name) is not getattr(Component, name)
            or name in component.__dict__
        )

    def __init__(self, simulator: Simulator) -> None:
        pairs = simulator._components
        self.ticking = [
            (component, clock) for component, clock in pairs if self._overrides(component, "tick")
        ]
        self.hinted = [
            (component, clock)
            for component, clock in pairs
            if self._overrides(component, "next_event")
        ]
        self.skippers = [
            (component, clock) for component, clock in pairs if self._overrides(component, "skip")
        ]
        self.forces_dense = any(
            not self._overrides(component, "next_event") for component, _ in self.ticking
        )
        clocks: Dict[str, ClockDomain] = {}
        for _, clock in pairs:
            clocks.setdefault(clock.name, clock)
        self.clocks = list(clocks.values())
        self.divisors: Dict[str, int] = {}
        self.single_rate = True

    def refresh_divisors(self, simulator: Simulator) -> None:
        """Recompute clock ratios (cheap; frequencies can change over time)."""
        self.divisors = {clock.name: simulator._divisor(clock) for clock in self.clocks}
        self.single_rate = all(divisor == 1 for divisor in self.divisors.values())

    # ------------------------------------------------------------------ dense

    def dense_tick(self, simulator: Simulator) -> None:
        """One base tick of the reference cycle-driven semantics."""
        if self.single_rate:
            for component, clock in self.ticking:
                component.tick(clock.cycles)
            for clock in self.clocks:
                clock.advance()
            simulator._base_tick += 1
            return
        base_tick = simulator._base_tick
        divisors = self.divisors
        for component, clock in self.ticking:
            if base_tick % divisors[clock.name] == 0:
                component.tick(clock.cycles)
        for clock in self.clocks:
            if base_tick % divisors[clock.name] == 0:
                clock.advance()
        simulator._base_tick += 1

    # ------------------------------------------------------------ event-driven

    def quiescent_span(self, simulator: Simulator, limit: int) -> int:
        """Base ticks until the earliest pending wake, capped at ``limit``.

        Returns 0 when some component needs a dense tick right now.  A wake of
        ``k`` domain cycles from a component whose domain next ticks at base
        tick ``first`` pins the wake to base tick ``first + (k - 1) * div``;
        everything before that is quiescent by the component's promise.
        """
        span = limit
        hinted = self.hinted
        if self.single_rate:
            for index, (component, _) in enumerate(hinted):
                horizon = component.next_event()
                if horizon is not None and horizon <= span:
                    if horizon <= 1:
                        # Move the blocking component to the front: in a busy
                        # stretch the same component usually blocks for many
                        # consecutive cycles, and probing it first turns the
                        # full wake sweep into a single call.
                        if index:
                            hinted.insert(0, hinted.pop(index))
                        return 0
                    span = horizon - 1
            return span
        base_tick = simulator._base_tick
        divisors = self.divisors
        for index, (component, clock) in enumerate(hinted):
            horizon = component.next_event()
            if horizon is None:
                continue
            if horizon < 1:
                horizon = 1
            divisor = divisors[clock.name]
            remainder = base_tick % divisor
            first = base_tick if remainder == 0 else base_tick + (divisor - remainder)
            bound = first + (horizon - 1) * divisor - base_tick
            if bound < span:
                if bound <= 0:
                    if index:
                        hinted.insert(0, hinted.pop(index))
                    return 0
                span = bound
        return span

    def skip_span(self, simulator: Simulator, span: int) -> None:
        """Jump ``span`` quiescent base ticks, batch-applying skipped ticks."""
        if self.single_rate:
            for component, _ in self.skippers:
                component.skip(span)
            for clock in self.clocks:
                clock.advance(span)
            simulator._base_tick += span
            return
        base_tick = simulator._base_tick
        divisors = self.divisors
        domain_ticks: Dict[str, int] = {}
        for clock in self.clocks:
            divisor = divisors[clock.name]
            remainder = base_tick % divisor
            first = base_tick if remainder == 0 else base_tick + (divisor - remainder)
            if first >= base_tick + span:
                count = 0
            else:
                count = (base_tick + span - 1 - first) // divisor + 1
            domain_ticks[clock.name] = count
        for component, clock in self.skippers:
            count = domain_ticks[clock.name]
            if count:
                component.skip(count)
        for clock in self.clocks:
            count = domain_ticks[clock.name]
            if count:
                clock.advance(count)
        simulator._base_tick += span


def build_simulator(
    frequency_hz: float, components: Sequence[Component] = (), dense: bool = False
) -> Simulator:
    """Convenience helper: create a simulator and register ``components``."""
    simulator = Simulator(default_frequency_hz=frequency_hz, dense=dense)
    for component in components:
        simulator.add_component(component)
    return simulator
