"""The simulation kernel: dense (cycle-driven) and event-driven stepping.

The simulator owns the set of components, their clock domains, the activity
counters, and the trace recorder.  A simulation advances in *base ticks*: one
base tick corresponds to one cycle of the fastest clock domain; slower domains
tick on the cycles where their (integer) divisor divides the base tick index.

Two scheduling modes share that time base:

* **Dense mode** (``dense=True``) is the legacy cycle-driven kernel: every
  component's :meth:`~repro.sim.component.Component.tick` is called on every
  cycle of its domain.  It is the reference semantics and the baseline the
  differential test-suite compares against.
* **Event-driven mode** (the default) computes the earliest pending wake
  across all clock domains and jumps the base-tick counter over the provably
  quiescent span in between.  The skipped ticks are replayed in one batch per
  component through :meth:`~repro.sim.component.Component.skip`, so final
  state, activity counters, and traces are cycle-exact — identical to dense
  stepping — while idle-heavy scenarios (the always-on monitoring workloads
  the paper is about) run orders of magnitude fewer Python-level tick calls.

The event-driven mode resolves wakes in two tiers:

* components flagged :attr:`~repro.sim.component.Component.wake_cacheable`
  have their :meth:`~repro.sim.component.Component.next_event` horizon cached
  as an **absolute base-tick deadline** in a lazy min-heap.  The cache entry
  is only recomputed when the component itself invalidates it through
  :meth:`~repro.sim.component.Component.wake_changed` (register writes, event
  inputs) or when its deadline fires — so a quiescent span costs O(active
  components), not O(all components);
* all other hinted components are *volatile* and re-polled at every wake
  boundary, which is exactly the pre-cache behaviour and the safe default
  for reactive wakes (buses, DMA, CPU, PELS).

The per-run :class:`_SchedulePlan` is persistent: it is rebuilt only when the
component set, the hook overrides, or the clock ratios change — not per
:meth:`Simulator.step`/:meth:`Simulator.run_until` call.  ``cached_wakes=
False`` disables the deadline cache (every hinted component becomes
volatile), which is how the benchmarks A/B the cached scheduler against the
legacy poll-everything kernel.

For the scenarios in this repository all active components share one domain,
but the multi-domain support is what lets the iso-latency experiment clock
PELS at 27 MHz while the reference Ibex system runs at 55 MHz; wake horizons
are expressed in domain-local cycles and converted to base ticks by the
scheduler.

See ``docs/simulator.md`` for the wake protocol, the invalidation contract,
and the dense-vs-event equivalence guarantee.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.sim.activity import ActivityCounters
from repro.sim.clock import ClockDomain
from repro.sim.component import Component
from repro.sim.trace import TraceRecorder


class SimulationError(RuntimeError):
    """Raised for simulator misuse or when a run exceeds its cycle budget."""


class Simulator:
    """Coordinates clock domains and components and advances simulated time."""

    def __init__(
        self,
        default_frequency_hz: float = 55e6,
        dense: bool = False,
        cached_wakes: bool = True,
    ) -> None:
        self.activity = ActivityCounters()
        self.traces = TraceRecorder()
        #: When True, use the legacy cycle-driven kernel (tick every component
        #: on every cycle of its domain).  When False (default), skip over
        #: quiescent spans using the components' wake hints.  May be toggled
        #: between :meth:`step` calls; both modes produce identical state.
        self.dense = dense
        #: When False, disable the cached wake-horizon scheduler and re-poll
        #: every hinted component at every wake boundary (the pre-cache
        #: kernel).  Exists for A/B benchmarking and as an escape hatch.
        self.cached_wakes = cached_wakes
        #: Scheduler instrumentation: ``next_event_calls`` (wake polls),
        #: ``dense_ticks``, ``spans_skipped``, ``cycles_skipped``,
        #: ``plan_builds``.  Monotonic; cleared by :meth:`reset`.
        self.kernel_stats: Dict[str, int] = {
            "next_event_calls": 0,
            "dense_ticks": 0,
            "spans_skipped": 0,
            "cycles_skipped": 0,
            "plan_builds": 0,
        }
        self._domains: Dict[str, ClockDomain] = {}
        self._components: List[Tuple[Component, ClockDomain]] = []
        self._components_by_name: Dict[str, Component] = {}
        self._base_tick = 0
        self._plan: Optional["_SchedulePlan"] = None
        self._fastest_hz: float = 0.0
        self._default_domain = self.add_clock_domain("default", default_frequency_hz)

    # ----------------------------------------------------------------- domains

    def add_clock_domain(self, name: str, frequency_hz: float) -> ClockDomain:
        """Create and register a clock domain."""
        if name in self._domains:
            raise SimulationError(f"clock domain {name!r} already exists")
        domain = ClockDomain(name, frequency_hz)
        self._domains[name] = domain
        if frequency_hz > self._fastest_hz:
            self._fastest_hz = frequency_hz
        self._plan = None
        return domain

    def clock_domain(self, name: str) -> ClockDomain:
        """Look up a registered clock domain by name."""
        try:
            return self._domains[name]
        except KeyError as exc:
            raise SimulationError(f"unknown clock domain {name!r}") from exc

    @property
    def default_domain(self) -> ClockDomain:
        """The domain components are added to when none is specified."""
        return self._default_domain

    @property
    def domains(self) -> Tuple[ClockDomain, ...]:
        """All registered clock domains."""
        return tuple(self._domains.values())

    # -------------------------------------------------------------- components

    def add_component(self, component: Component, domain: Optional[ClockDomain] = None) -> Component:
        """Register a component with the simulator and a clock domain."""
        if component.name in self._components_by_name:
            raise SimulationError(f"a component named {component.name!r} is already registered")
        clock = domain if domain is not None else self._default_domain
        if clock.name not in self._domains:
            raise SimulationError(f"clock domain {clock.name!r} is not registered with this simulator")
        component.attach(self, clock)
        self._components.append((component, clock))
        self._components_by_name[component.name] = component
        self._plan = None
        return component

    def component(self, name: str) -> Component:
        """Look up a registered component by name (O(1))."""
        try:
            return self._components_by_name[name]
        except KeyError as exc:
            raise SimulationError(f"unknown component {name!r}") from exc

    @property
    def components(self) -> Tuple[Component, ...]:
        """All registered components, in registration order."""
        return tuple(component for component, _ in self._components)

    # ------------------------------------------------------------------ timing

    @property
    def current_cycle(self) -> int:
        """Base-tick counter (cycles of the fastest domain)."""
        return self._base_tick

    def _fastest_frequency(self) -> float:
        # Domains are dataclasses whose frequency is mutable, and this is
        # only called from run_for_time (once per call) — recompute live so
        # a frequency change before the next step cannot go stale.  The hot
        # paths use the plan's divisors, refreshed on snapshot change.
        fastest = max(domain.frequency_hz for domain in self._domains.values())
        self._fastest_hz = fastest
        return fastest

    def _divisor(self, domain: ClockDomain, fastest_hz: Optional[float] = None) -> int:
        """Integer ratio between the fastest clock and ``domain``."""
        fastest = self._fastest_hz if fastest_hz is None else fastest_hz
        ratio = fastest / domain.frequency_hz
        divisor = round(ratio)
        if divisor < 1 or abs(ratio - divisor) > 1e-6:
            raise SimulationError(
                f"clock domain {domain.name!r} frequency must divide the fastest domain"
            )
        return divisor

    def _schedule_plan(self) -> "_SchedulePlan":
        """The persistent stepping schedule, rebuilt only when stale.

        A plan goes stale when the component set changes (tracked eagerly by
        :meth:`add_component`/:meth:`add_clock_domain`) or when a component's
        hook overrides change — e.g. a test double assigning ``tick`` on the
        instance after registration — which the cheap fingerprint check
        detects at the next :meth:`step`/:meth:`run_until` entry.  Clock
        ratios are re-validated on every call (frequencies are mutable), but
        recomputed only when they actually changed.
        """
        plan = self._plan
        if plan is None or plan.fingerprint != _SchedulePlan.compute_fingerprint(self):
            plan = _SchedulePlan(self)
            self._plan = plan
            self.kernel_stats["plan_builds"] += 1
        plan.refresh_divisors(self)
        return plan

    def _notify_wake_changed(self, component: Component) -> None:
        """Invalidate ``component``'s cached wake deadline (if it has one)."""
        plan = self._plan
        if plan is not None:
            plan.invalidate_wake(component)

    # --------------------------------------------------------------------- run

    def step(self, cycles: int = 1) -> None:
        """Advance the simulation by ``cycles`` base ticks.

        In dense mode every component is ticked on every cycle of its domain.
        In event-driven mode quiescent spans are skipped; the end state after
        ``step(n)`` is identical in both modes.
        """
        if cycles < 0:
            raise SimulationError("cannot step a negative number of cycles")
        plan = self._schedule_plan()
        if self.dense or plan.forces_dense:
            for _ in range(cycles):
                plan.dense_tick(self)
            return
        remaining = cycles
        while remaining > 0:
            span = plan.quiescent_span(self, remaining)
            if span > 0:
                plan.skip_span(self, span)
                remaining -= span
            if remaining > 0:
                plan.dense_tick(self)
                remaining -= 1

    def run_until(
        self,
        condition: Callable[[], bool],
        max_cycles: int = 1_000_000,
        label: str = "condition",
    ) -> int:
        """Step until ``condition()`` is true; return the number of cycles stepped.

        Raises :class:`SimulationError` if the condition does not become true
        within ``max_cycles``.  In event-driven mode the condition is
        re-evaluated at every wake boundary (and after every dense tick), so
        conditions that flip on observable events are detected on the exact
        cycle; a condition watching a counter that advances *inside* a
        quiescent span (e.g. a raw COUNT register, or the side effects of an
        event line nothing observes) is only seen at the span's end — use
        ``dense=True`` for cycle-level polling of such state.
        """
        start = self._base_tick
        plan = self._schedule_plan()
        event_driven = not (self.dense or plan.forces_dense)
        while not condition():
            elapsed = self._base_tick - start
            if elapsed >= max_cycles:
                raise SimulationError(
                    f"{label} not reached within {max_cycles} cycles"
                )
            if event_driven:
                span = plan.quiescent_span(self, max_cycles - elapsed)
                if span > 0:
                    plan.skip_span(self, span)
                    continue
            plan.dense_tick(self)
        return self._base_tick - start

    def run_for_time(self, seconds: float) -> int:
        """Run for a wall-clock duration measured in the fastest domain.

        The duration is converted with ``round()`` so a period that is an
        exact multiple of the clock period never loses a cycle to binary
        floating-point truncation (e.g. ``3 * (1 / 55e6)`` seconds is exactly
        3 cycles, not 2).
        """
        cycles = int(round(seconds * self._fastest_frequency()))
        self.step(cycles)
        return cycles

    def reset(self) -> None:
        """Reset every component, clock domain, and all bookkeeping.

        The trace recorder is cleared *in place* so references held by
        callers (analysis code, open timelines) keep observing the simulator
        instead of silently going stale.
        """
        for component, _ in self._components:
            component.reset()
        for domain in self._domains.values():
            domain.reset()
        self.activity.clear()
        self.traces.clear()
        self._base_tick = 0
        for key in self.kernel_stats:
            self.kernel_stats[key] = 0
        # Cached deadlines are absolute base ticks; rewinding time voids them.
        if self._plan is not None:
            self._plan.clear_wake_cache()

    # ------------------------------------------------------------------- trace

    def trace(self, signal: str, value: object) -> None:
        """Record a value change of ``signal`` at the current base tick."""
        self.traces.record(self._base_tick, signal, value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = "dense" if self.dense else "event-driven"
        return (
            f"Simulator(cycle={self._base_tick}, components={len(self._components)}, "
            f"domains={[d.name for d in self._domains.values()]}, mode={mode})"
        )


class _SchedulePlan:
    """Persistent stepping schedule for one set of registered components.

    Splits the component list by which hooks are actually overridden so the
    hot loops only visit objects that can have an effect:

    * ``ticking`` — components with a real :meth:`Component.tick` (a default
      tick is a no-op by definition and is never called);
    * ``volatile`` — hinted components re-polled at every wake boundary
      (reactive wakes, plus everything when ``cached_wakes`` is off);
    * ``cached`` — hinted components flagged ``wake_cacheable``, whose
      horizons live in the deadline heap and are recomputed only on
      invalidation or deadline expiry;
    * ``skippers`` — components with a real :meth:`Component.skip` (the only
      ones a skipped span must be replayed on).

    A component that ticks but gives no wake hint forces dense stepping
    (``forces_dense``), in which case the event-driven loops are bypassed
    entirely instead of recomputing a zero-length span every cycle.

    **Deadline cache.**  ``_deadlines[i]`` is the authoritative absolute base
    tick at which cached component ``i`` next needs a dense tick (``None`` =
    no self-scheduled wake).  ``_heap`` holds ``(deadline, i)`` entries and is
    lazy: stale entries (whose deadline no longer matches the authoritative
    array) are discarded on peek.  ``_dirty`` indexes are re-polled at the
    next boundary.  Absolute deadlines survive skips unchanged — only firing
    (deadline expiry, detected in :meth:`dense_tick`) or an explicit
    :meth:`invalidate_wake` moves them.
    """

    @staticmethod
    def _overrides(component: Component, name: str) -> bool:
        """Whether ``component`` provides its own ``name`` hook — via its
        class *or* as an instance attribute (test doubles, monkey-patches)."""
        return (
            getattr(type(component), name) is not getattr(Component, name)
            or name in component.__dict__
        )

    @staticmethod
    def compute_fingerprint(simulator: Simulator) -> Tuple:
        """Cheap staleness signature: the volatile/cached classification
        inputs — component identities, hook overrides, and the cache toggle
        (so flipping ``cached_wakes`` between steps takes effect, like the
        ``dense`` flag does)."""
        overrides = _SchedulePlan._overrides
        return (
            simulator.cached_wakes,
            tuple(
                (
                    id(component),
                    overrides(component, "tick"),
                    overrides(component, "next_event"),
                    overrides(component, "skip"),
                )
                for component, _ in simulator._components
            ),
        )

    def __init__(self, simulator: Simulator) -> None:
        pairs = simulator._components
        self.fingerprint = self.compute_fingerprint(simulator)
        self.ticking = [
            (component, clock) for component, clock in pairs if self._overrides(component, "tick")
        ]
        hinted = [
            (component, clock)
            for component, clock in pairs
            if self._overrides(component, "next_event")
        ]
        use_cache = simulator.cached_wakes
        self.volatile = [
            (component, clock)
            for component, clock in hinted
            if not (use_cache and component.wake_cacheable)
        ]
        self.cached = [
            (component, clock)
            for component, clock in hinted
            if use_cache and component.wake_cacheable
        ]
        self.skippers = [
            (component, clock) for component, clock in pairs if self._overrides(component, "skip")
        ]
        self.forces_dense = any(
            not self._overrides(component, "next_event") for component, _ in self.ticking
        )
        clocks: Dict[str, ClockDomain] = {}
        for _, clock in pairs:
            clocks.setdefault(clock.name, clock)
        self.clocks = list(clocks.values())
        self.divisors: Dict[str, int] = {}
        self.single_rate = True
        self._freq_snapshot: Optional[Tuple[float, ...]] = None
        # Deadline cache (see class docstring).
        self._cache_index: Dict[Component, int] = {
            component: index for index, (component, _) in enumerate(self.cached)
        }
        self._deadlines: List[Optional[int]] = [None] * len(self.cached)
        self._dirty = set(range(len(self.cached)))
        self._heap: List[Tuple[int, int]] = []
        #: Component whose tick()/skip() is currently executing; its *self*
        #: invalidations are suppressed (see invalidate_wake).
        self._active_component: Optional[Component] = None

    def refresh_divisors(self, simulator: Simulator) -> None:
        """Recompute clock ratios only when a frequency actually changed.

        The snapshot covers *all* simulator domains, not just those with
        components: the base tick is defined by the fastest domain overall,
        so a frequency change on a component-less domain still moves every
        divisor.
        """
        snapshot = tuple(domain.frequency_hz for domain in simulator._domains.values())
        if snapshot == self._freq_snapshot:
            return
        fastest = max(snapshot, default=simulator._fastest_hz)
        simulator._fastest_hz = fastest
        self.divisors = {
            clock.name: simulator._divisor(clock, fastest) for clock in self.clocks
        }
        self.single_rate = all(divisor == 1 for divisor in self.divisors.values())
        self._freq_snapshot = snapshot
        # Deadlines were computed with the old ratios; recompute lazily.
        self.clear_wake_cache()

    # ------------------------------------------------------------- invalidation

    def invalidate_wake(self, component: Component) -> None:
        """Mark one cached component's deadline stale (O(1)).

        Invalidations a component raises about *itself* while its own
        ``tick``/``skip`` runs are ignored: the wake contract guarantees the
        ticks before its deadline evolve state uniformly (the absolute
        deadline stays valid — e.g. a watchdog decrementing its COUNT
        register), and the deadline tick itself is re-polled through the
        expiry sweep in :meth:`dense_tick`.  Cross-component invalidations
        (PELS delivering an event input, a CPU store hitting a peripheral
        register) are always honoured.
        """
        if component is self._active_component:
            return
        index = self._cache_index.get(component)
        if index is not None:
            self._dirty.add(index)

    def clear_wake_cache(self) -> None:
        """Drop every cached deadline (component set unchanged)."""
        if not self.cached:
            return
        self._deadlines = [None] * len(self.cached)
        self._dirty = set(range(len(self.cached)))
        self._heap = []

    def _repoll(self, simulator: Simulator, index: int) -> None:
        """Recompute one cached component's absolute deadline."""
        component, clock = self.cached[index]
        horizon = component.next_event()
        if horizon is None:
            self._deadlines[index] = None
            return
        if horizon < 1:
            horizon = 1
        base_tick = simulator._base_tick
        if self.single_rate:
            deadline = base_tick + horizon - 1
        else:
            divisor = self.divisors[clock.name]
            remainder = base_tick % divisor
            first = base_tick if remainder == 0 else base_tick + (divisor - remainder)
            deadline = first + (horizon - 1) * divisor
        self._deadlines[index] = deadline
        heappush(self._heap, (deadline, index))
        # Lazy heaps accumulate stale entries; compact when they dominate.
        if len(self._heap) > 4 * len(self.cached) + 16:
            self._heap = [
                (deadline, i)
                for i, deadline in enumerate(self._deadlines)
                if deadline is not None
            ]
            self._heap.sort()

    # ------------------------------------------------------------------ dense

    def dense_tick(self, simulator: Simulator) -> None:
        """One base tick of the reference cycle-driven semantics."""
        if self.single_rate:
            for component, clock in self.ticking:
                self._active_component = component
                component.tick(clock.cycles)
            self._active_component = None
            for clock in self.clocks:
                clock.advance()
            simulator._base_tick += 1
        else:
            base_tick = simulator._base_tick
            divisors = self.divisors
            for component, clock in self.ticking:
                if base_tick % divisors[clock.name] == 0:
                    self._active_component = component
                    component.tick(clock.cycles)
            self._active_component = None
            for clock in self.clocks:
                if base_tick % divisors[clock.name] == 0:
                    clock.advance()
            simulator._base_tick += 1
        simulator.kernel_stats["dense_ticks"] += 1
        # Expire cached deadlines the tick just serviced: the component fired
        # (or was due), so its old promise is used up and it must be
        # re-polled at the next boundary.  Register-notify usually marks it
        # dirty already; this sweep is the guaranteed path.
        heap = self._heap
        if heap:
            base_tick = simulator._base_tick
            deadlines = self._deadlines
            dirty = self._dirty
            while heap:
                deadline, index = heap[0]
                if deadlines[index] != deadline:
                    heappop(heap)  # stale entry
                    continue
                if deadline >= base_tick:
                    break
                heappop(heap)
                deadlines[index] = None
                dirty.add(index)

    # ------------------------------------------------------------ event-driven

    def quiescent_span(self, simulator: Simulator, limit: int) -> int:
        """Base ticks until the earliest pending wake, capped at ``limit``.

        Returns 0 when some component needs a dense tick right now.  A wake of
        ``k`` domain cycles from a component whose domain next ticks at base
        tick ``first`` pins the wake to base tick ``first + (k - 1) * div``;
        everything before that is quiescent by the component's promise.
        """
        stats = simulator.kernel_stats
        base_tick = simulator._base_tick
        # Re-poll invalidated cached components first (O(active)).
        dirty = self._dirty
        if dirty:
            stats["next_event_calls"] += len(dirty)
            for index in tuple(dirty):
                self._repoll(simulator, index)
            dirty.clear()
        span = limit
        volatile = self.volatile
        if self.single_rate:
            for index, (component, _) in enumerate(volatile):
                horizon = component.next_event()
                if horizon is not None and horizon <= span:
                    if horizon <= 1:
                        # Move the blocking component to the front: in a busy
                        # stretch the same component usually blocks for many
                        # consecutive cycles, and probing it first turns the
                        # full wake sweep into a single call.
                        if index:
                            volatile.insert(0, volatile.pop(index))
                        stats["next_event_calls"] += index + 1
                        return 0
                    span = horizon - 1
        else:
            divisors = self.divisors
            for index, (component, clock) in enumerate(volatile):
                horizon = component.next_event()
                if horizon is None:
                    continue
                if horizon < 1:
                    horizon = 1
                divisor = divisors[clock.name]
                remainder = base_tick % divisor
                first = base_tick if remainder == 0 else base_tick + (divisor - remainder)
                bound = first + (horizon - 1) * divisor - base_tick
                if bound < span:
                    if bound <= 0:
                        if index:
                            volatile.insert(0, volatile.pop(index))
                        stats["next_event_calls"] += index + 1
                        return 0
                    span = bound
        stats["next_event_calls"] += len(volatile)
        # Earliest cached deadline (lazy heap peek).
        heap = self._heap
        deadlines = self._deadlines
        while heap:
            deadline, index = heap[0]
            if deadlines[index] != deadline:
                heappop(heap)
                continue
            gap = deadline - base_tick
            if gap <= 0:
                return 0
            if gap < span:
                span = gap
            break
        return span

    def skip_span(self, simulator: Simulator, span: int) -> None:
        """Jump ``span`` quiescent base ticks, batch-applying skipped ticks."""
        stats = simulator.kernel_stats
        stats["spans_skipped"] += 1
        stats["cycles_skipped"] += span
        if self.single_rate:
            for component, _ in self.skippers:
                self._active_component = component
                component.skip(span)
            self._active_component = None
            for clock in self.clocks:
                clock.advance(span)
            simulator._base_tick += span
            return
        base_tick = simulator._base_tick
        divisors = self.divisors
        domain_ticks: Dict[str, int] = {}
        for clock in self.clocks:
            divisor = divisors[clock.name]
            remainder = base_tick % divisor
            first = base_tick if remainder == 0 else base_tick + (divisor - remainder)
            if first >= base_tick + span:
                count = 0
            else:
                count = (base_tick + span - 1 - first) // divisor + 1
            domain_ticks[clock.name] = count
        for component, clock in self.skippers:
            count = domain_ticks[clock.name]
            if count:
                self._active_component = component
                component.skip(count)
        self._active_component = None
        for clock in self.clocks:
            count = domain_ticks[clock.name]
            if count:
                clock.advance(count)
        simulator._base_tick += span


def build_simulator(
    frequency_hz: float, components: Sequence[Component] = (), dense: bool = False
) -> Simulator:
    """Convenience helper: create a simulator and register ``components``."""
    simulator = Simulator(default_frequency_hz=frequency_hz, dense=dense)
    for component in components:
        simulator.add_component(component)
    return simulator
