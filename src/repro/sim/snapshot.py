"""Snapshot/restore of prepared scenarios: serialisable plans and state.

The plan/state split (:class:`~repro.sim.simulator.SchedulePlan` vs
:class:`~repro.sim.simulator.SimState`) makes a prepared simulator
*portable*: the plan is structural (component classes + hook overrides +
domain slots — serialisable as names, reconstructible in any process) and
the state is plain mutable Python data (base tick, wake-deadline heap,
divisors, register-backed component state, activity/trace recorders).
This module turns that into an on-the-wire format:

* :func:`plan_to_payload` / :func:`plan_from_payload` — a **registry-free,
  versioned JSON serialisation of a plan fingerprint** (component classes
  as ``"module:qualname"`` strings resolved via importlib, in the same
  spirit as ``spec_from_manifest``).  A deserialised plan re-enters the
  process-wide intern table through :meth:`SchedulePlan.adopt`, so a warm
  worker's first resolution counts ``plan_shared`` instead of rebuilding.
* :func:`snapshot_prepared` / :func:`restore_prepared` — a snapshot of a
  whole **prepared scenario** (the ``PreparedScenario`` objects the batch
  executor enrolls: simulator + outcome extractor + drive state) taken at
  a stop boundary, as a self-describing blob: magic, JSON header (schema
  version, base tick, plan payload + digest, payload checksum), then the
  pickled object graph.

**What a snapshot captures**: everything reachable from the prepared
object — the simulator, its :class:`SimState` (base tick, authoritative
wake-deadline list + lazy heap, divisors, kernel-stat counters, activity
counters, trace recorder positions), and every component's register/
architectural state.  **What it deliberately drops** (via
``SimState.__getstate__``): the backend-owned ``_wake_row`` view (each
batch backend re-attaches its own row on enrollment, rebuilt from the
authoritative ``deadlines`` list) and the transient ``_active_component``
marker — which is why one snapshot restores identically under the pure
python and the numpy backend.

Every integrity failure — bad magic, truncation, checksum mismatch, a
stale schema version, an unresolvable class — raises :class:`SnapshotError`
with a named reason.  Callers that must never fail a run (the plan cache)
catch it and fall back to cold preparation.
"""

from __future__ import annotations

import hashlib
import importlib
import io
import json
import pickle
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.sim.simulator import SchedulePlan

#: Bump whenever the snapshot container layout *or* the pickled object
#: graph changes shape (new SimState fields, component refactors that move
#: architectural state).  Stale-version blobs restore as a named
#: :class:`SnapshotError`, which the cache layer turns into a cold start.
SNAPSHOT_SCHEMA_VERSION = 1

#: Container magic: identifies a snapshot blob and pins the container
#: framing (header line + pickle payload) independent of the schema number.
SNAPSHOT_MAGIC = b"REPRO-SNAP\n"


class SnapshotError(Exception):
    """A snapshot blob could not be produced or restored.

    Raised with a named reason for every integrity failure: bad magic,
    truncated payload, checksum mismatch, stale schema version, or an
    unresolvable component class.  Deliberately *not* a
    ``SimulationError`` — a snapshot problem is a cache problem, never a
    simulation-correctness problem, and callers downgrade it to a cold
    start.
    """


# --------------------------------------------------------------------- plans


def plan_to_payload(plan: SchedulePlan) -> Dict[str, object]:
    """Serialise a plan fingerprint as registry-free, JSON-ready data.

    Component classes are recorded as ``"module:qualname"`` strings —
    resolvable by import in any process with the same code, with no
    central class registry to keep in sync (the ``spec_from_manifest``
    idiom).  The payload is versioned by :data:`SNAPSHOT_SCHEMA_VERSION`
    via the enclosing snapshot header.
    """
    cached_wakes, entries = plan.fingerprint
    return {
        "cached_wakes": bool(cached_wakes),
        "entries": [
            {
                "component": f"{cls.__module__}:{cls.__qualname__}",
                "tick": bool(ticks),
                "next_event": bool(hinted),
                "skip": bool(skips),
                "wake_cacheable": bool(cacheable),
                "domain_slot": int(slot),
            }
            for cls, ticks, hinted, skips, cacheable, slot in entries
        ],
    }


def _resolve_class(spec: str) -> type:
    module_name, _, qualname = spec.partition(":")
    if not module_name or not qualname:
        raise SnapshotError(f"malformed component class reference {spec!r}")
    try:
        obj: object = importlib.import_module(module_name)
        for part in qualname.split("."):
            obj = getattr(obj, part)
    except (ImportError, AttributeError) as exc:
        raise SnapshotError(f"cannot resolve component class {spec!r}: {exc}") from exc
    if not isinstance(obj, type):
        raise SnapshotError(f"component class reference {spec!r} is not a class")
    return obj


def plan_from_payload(payload: Dict[str, object]) -> SchedulePlan:
    """Rebuild (and intern) a plan from :func:`plan_to_payload` data.

    Returns the **canonical interned plan** for the fingerprint — if an
    equal plan is already interned in this process, that instance is
    returned so identity-based sharing (``state.bound_plan is plan``)
    keeps working across a restore.
    """
    try:
        entries = tuple(
            (
                _resolve_class(entry["component"]),
                bool(entry["tick"]),
                bool(entry["next_event"]),
                bool(entry["skip"]),
                bool(entry["wake_cacheable"]),
                int(entry["domain_slot"]),
            )
            for entry in payload["entries"]
        )
        fingerprint = (bool(payload["cached_wakes"]), entries)
    except (AttributeError, KeyError, TypeError, ValueError) as exc:
        raise SnapshotError(f"malformed plan payload: {exc!r}") from exc
    canonical, _, _ = SchedulePlan.adopt(SchedulePlan(fingerprint))
    return canonical


def plan_digest(plan: SchedulePlan) -> str:
    """Stable content hash of a plan's serialised form."""
    canonical = json.dumps(plan_to_payload(plan), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------- snapshots


@dataclass
class RestoredSnapshot:
    """A successfully restored prepared scenario.

    ``prepared`` is the live object (same duck type the scenario
    registry's ``batch_prepare`` returns); ``base_tick`` is the simulated
    cycle the snapshot was taken at — a warm consumer resumes simulating
    from there.  ``plan_shared`` reports whether the embedded plan matched
    an already-interned one in this process.
    """

    prepared: object
    base_tick: int
    plan_shared: bool


def snapshot_prepared(prepared: object) -> bytes:
    """Serialise a prepared scenario (at a stop boundary) into a blob.

    The prepared object must expose ``.simulator`` (every registry
    ``PreparedScenario`` does).  Taking a snapshot never mutates the
    prepared object — the simulator keeps running afterwards exactly as if
    no snapshot had been taken.
    """
    simulator = getattr(prepared, "simulator", None)
    if simulator is None:
        raise SnapshotError(f"{type(prepared).__name__} has no .simulator to snapshot")
    plan = simulator._plan
    try:
        buffer = io.BytesIO()
        pickle.dump(prepared, buffer, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        raise SnapshotError(f"prepared scenario is not picklable: {exc!r}") from exc
    payload = buffer.getvalue()
    header = {
        "schema_version": SNAPSHOT_SCHEMA_VERSION,
        "base_tick": int(simulator.current_cycle),
        "plan": plan_to_payload(plan) if plan is not None else None,
        "plan_digest": plan_digest(plan) if plan is not None else None,
        "payload_bytes": len(payload),
        "payload_sha256": hashlib.sha256(payload).hexdigest(),
    }
    header_line = json.dumps(header, sort_keys=True, separators=(",", ":")).encode("utf-8")
    return SNAPSHOT_MAGIC + header_line + b"\n" + payload


def read_header(blob: bytes) -> Tuple[Dict[str, object], bytes]:
    """Split a blob into its validated JSON header and raw pickle payload.

    Checks magic, header framing, schema version, payload length, and the
    payload checksum — every failure is a named :class:`SnapshotError`.
    The pickle payload is *not* deserialised here.
    """
    if not blob.startswith(SNAPSHOT_MAGIC):
        raise SnapshotError("bad magic: not a snapshot blob")
    rest = blob[len(SNAPSHOT_MAGIC) :]
    newline = rest.find(b"\n")
    if newline < 0:
        raise SnapshotError("truncated snapshot: missing header terminator")
    try:
        header = json.loads(rest[:newline].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SnapshotError(f"corrupt snapshot header: {exc}") from exc
    version = header.get("schema_version")
    if version != SNAPSHOT_SCHEMA_VERSION:
        raise SnapshotError(
            f"stale snapshot schema {version!r} (this build writes {SNAPSHOT_SCHEMA_VERSION})"
        )
    payload = rest[newline + 1 :]
    expected_bytes = header.get("payload_bytes")
    if len(payload) != expected_bytes:
        raise SnapshotError(
            f"truncated snapshot payload: {len(payload)} bytes, header says {expected_bytes}"
        )
    if hashlib.sha256(payload).hexdigest() != header.get("payload_sha256"):
        raise SnapshotError("corrupt snapshot payload: checksum mismatch")
    return header, payload


def restore_prepared(blob: bytes) -> RestoredSnapshot:
    """Restore a prepared scenario from a :func:`snapshot_prepared` blob.

    Validates the container (magic/version/length/checksum), rebuilds and
    interns the plan from the header, deserialises the object graph, and
    adopts the canonical interned plan on the restored simulator **without
    rebinding** — ``bind()`` would clear the restored wake cache, and the
    canonical plan's index lists are equal by construction (equal
    fingerprints classify identically), so only the two plan references
    are swapped.  Any failure raises :class:`SnapshotError`.
    """
    header, payload = read_header(blob)
    plan_payload = header.get("plan")
    canonical: Optional[SchedulePlan] = None
    shared = False
    if plan_payload is not None:
        canonical = plan_from_payload(plan_payload)
    try:
        prepared = pickle.loads(payload)
    except Exception as exc:
        raise SnapshotError(f"corrupt snapshot payload: unpickling failed ({exc!r})") from exc
    simulator = getattr(prepared, "simulator", None)
    if simulator is None:
        raise SnapshotError("restored object has no .simulator")
    base_tick = int(header["base_tick"])
    if simulator.current_cycle != base_tick:
        raise SnapshotError(
            f"restored simulator is at cycle {simulator.current_cycle}, "
            f"header says {base_tick}"
        )
    if canonical is not None and simulator._plan is not None:
        if simulator._plan.fingerprint != canonical.fingerprint:
            raise SnapshotError("restored plan does not match the snapshot header")
        if simulator._plan is not canonical:
            # Adopt the canonical interned instance so the identity check in
            # _schedule_plan keeps skipping rebinds, and later same-topology
            # resolutions in this process count plan_shared.
            shared = True
            simulator._state.bound_plan = canonical
            simulator._plan = canonical
    return RestoredSnapshot(prepared=prepared, base_tick=base_tick, plan_shared=shared)


__all__ = [
    "SNAPSHOT_MAGIC",
    "SNAPSHOT_SCHEMA_VERSION",
    "RestoredSnapshot",
    "SnapshotError",
    "plan_digest",
    "plan_from_payload",
    "plan_to_payload",
    "read_header",
    "restore_prepared",
    "snapshot_prepared",
]
