"""Switching-activity bookkeeping.

The power model (``repro.power``) is activity based: during a simulation each
component increments named counters (bus transactions, memory reads, register
writes, busy cycles, ...) and the power model later multiplies those counts by
per-event energy coefficients.  :class:`ActivityCounters` is a thin wrapper
around a ``dict`` that adds merging, scoping, and defensive checks.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, Iterator, Mapping, Tuple


class ActivityCounters:
    """Named, non-negative event counters grouped by component.

    Counter keys are ``(component, event)`` pairs, e.g.
    ``("ibex", "instructions")`` or ``("sram", "reads")``.
    """

    def __init__(self) -> None:
        self._counts: Counter = Counter()

    def add(self, component: str, event: str, amount: int = 1) -> None:
        """Increment the ``event`` counter of ``component`` by ``amount``."""
        if amount < 0:
            raise ValueError("activity increments must be non-negative")
        if not component or not event:
            raise ValueError("component and event names must be non-empty")
        self._counts[(component, event)] += amount

    def get(self, component: str, event: str) -> int:
        """Return the current count for ``(component, event)`` (0 if unseen)."""
        return self._counts.get((component, event), 0)

    def component_total(self, component: str, event: str | None = None) -> int:
        """Total count for a component, optionally restricted to one event."""
        if event is not None:
            return self.get(component, event)
        return sum(count for (comp, _), count in self._counts.items() if comp == component)

    def components(self) -> Tuple[str, ...]:
        """Sorted tuple of component names that have recorded activity."""
        return tuple(sorted({comp for comp, _ in self._counts}))

    def events(self, component: str) -> Dict[str, int]:
        """Mapping of event name to count for one component."""
        return {
            event: count
            for (comp, event), count in sorted(self._counts.items())
            if comp == component
        }

    def merge(self, other: "ActivityCounters") -> None:
        """Accumulate all counters from ``other`` into this instance."""
        self._counts.update(other._counts)

    def scaled(self, factor: float) -> Dict[Tuple[str, str], float]:
        """Return a plain dict of counters multiplied by ``factor``."""
        if factor < 0:
            raise ValueError("scaling factor must be non-negative")
        return {key: count * factor for key, count in self._counts.items()}

    def clear(self) -> None:
        """Drop all recorded activity."""
        self._counts.clear()

    def as_dict(self) -> Dict[Tuple[str, str], int]:
        """Return a copy of the raw counter mapping."""
        return dict(self._counts)

    def __iter__(self) -> Iterator[Tuple[Tuple[str, str], int]]:
        return iter(sorted(self._counts.items()))

    def __len__(self) -> int:
        return len(self._counts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        total = sum(self._counts.values())
        return f"ActivityCounters({len(self._counts)} keys, {total} events)"


def merge_all(counter_sets: Iterable[ActivityCounters]) -> ActivityCounters:
    """Merge an iterable of :class:`ActivityCounters` into a fresh instance."""
    merged = ActivityCounters()
    for counters in counter_sets:
        merged.merge(counters)
    return merged


def as_nested_dict(counters: ActivityCounters) -> Dict[str, Dict[str, int]]:
    """Convert flat ``(component, event)`` counters to ``{component: {event: n}}``."""
    nested: Dict[str, Dict[str, int]] = {}
    for (component, event), count in counters:
        nested.setdefault(component, {})[event] = count
    return nested


def total_events(counters: Mapping[Tuple[str, str], int]) -> int:
    """Sum of all event counts in a raw counter mapping."""
    return sum(counters.values())
