"""Lightweight signal tracing.

Traces are optional — the power and latency analyses rely on activity
counters and explicit timestamps — but they are invaluable when debugging a
linking scenario, and the examples use them to print event timelines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple


@dataclass(frozen=True)
class TraceEvent:
    """A single recorded value change."""

    cycle: int
    signal: str
    value: object

    def __str__(self) -> str:
        return f"@{self.cycle:>6} {self.signal} = {self.value!r}"


class SignalTrace:
    """Value-change history of one named signal."""

    def __init__(self, signal: str) -> None:
        self.signal = signal
        self._events: List[TraceEvent] = []

    def record(self, cycle: int, value: object) -> None:
        """Append a value change at ``cycle``."""
        if cycle < 0:
            raise ValueError("cycle must be non-negative")
        if self._events and cycle < self._events[-1].cycle:
            raise ValueError("trace events must be recorded in non-decreasing cycle order")
        self._events.append(TraceEvent(cycle, self.signal, value))

    def value_at(self, cycle: int) -> object:
        """Value of the signal at ``cycle`` (last change at or before it)."""
        value: object = None
        for event in self._events:
            if event.cycle > cycle:
                break
            value = event.value
        return value

    def changes(self) -> Tuple[TraceEvent, ...]:
        """All recorded value changes, oldest first."""
        return tuple(self._events)

    def first_cycle_with_value(self, value: object) -> Optional[int]:
        """Cycle of the first change to ``value``, or ``None`` if never seen."""
        for event in self._events:
            if event.value == value:
                return event.cycle
        return None

    def __len__(self) -> int:
        return len(self._events)


class TraceRecorder:
    """A set of named :class:`SignalTrace` objects."""

    def __init__(self) -> None:
        self._traces: Dict[str, SignalTrace] = {}

    def record(self, cycle: int, signal: str, value: object) -> None:
        """Record a value change, creating the trace on first use."""
        trace = self._traces.get(signal)
        if trace is None:
            trace = SignalTrace(signal)
            self._traces[signal] = trace
        trace.record(cycle, value)

    def trace(self, signal: str) -> SignalTrace:
        """Return the trace for ``signal`` (raises ``KeyError`` if absent)."""
        return self._traces[signal]

    def signals(self) -> Tuple[str, ...]:
        """Sorted names of all traced signals."""
        return tuple(sorted(self._traces))

    def merged_timeline(self, signals: Optional[Iterable[str]] = None) -> List[TraceEvent]:
        """Chronologically merged events of ``signals`` (default: all)."""
        selected = self.signals() if signals is None else tuple(signals)
        events: List[TraceEvent] = []
        for name in selected:
            if name in self._traces:
                events.extend(self._traces[name].changes())
        return sorted(events, key=lambda event: (event.cycle, event.signal))

    def clear(self) -> None:
        """Drop all traces in place (existing references stay valid)."""
        self._traces.clear()

    def __contains__(self, signal: str) -> bool:
        return signal in self._traces

    def __len__(self) -> int:
        return len(self._traces)
