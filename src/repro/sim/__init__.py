"""Simulation kernel used by every hardware model in the repo.

The kernel intentionally stays small: components register themselves with a
:class:`Simulator` and the simulator advances a global base-tick counter.  It
offers two cycle-exact scheduling modes:

* **dense** (``Simulator(dense=True)``): each component's
  :meth:`Component.tick` is called exactly once per cycle of the clock domain
  it belongs to — the legacy cycle-driven semantics;
* **event-driven** (the default): components advertise their next wake via
  :meth:`Component.next_event` and the scheduler jumps over provably
  quiescent spans, batch-replaying the skipped ticks through
  :meth:`Component.skip`.  Final state, activity counters, and traces are
  identical to dense stepping (the property suite in
  ``tests/property/test_differential.py`` enforces this), but idle-heavy
  scenarios run orders of magnitude fewer Python-level calls.

Activity counters and signal traces hang off the simulator so the power
model can consume them after a run.  See ``docs/simulator.md`` for the wake
protocol.
"""

from repro.sim.clock import ClockDomain
from repro.sim.component import Component
from repro.sim.activity import ActivityCounters
from repro.sim.backend import available_backends, resolve_backend
from repro.sim.batch import BatchInstance, BatchSimulator
from repro.sim.simulator import SchedulePlan, SimState, Simulator, SimulationError
from repro.sim.trace import SignalTrace, TraceRecorder

__all__ = [
    "ActivityCounters",
    "BatchInstance",
    "BatchSimulator",
    "ClockDomain",
    "Component",
    "SchedulePlan",
    "SignalTrace",
    "SimState",
    "SimulationError",
    "Simulator",
    "TraceRecorder",
    "available_backends",
    "resolve_backend",
]
