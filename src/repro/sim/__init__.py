"""Cycle-driven simulation kernel used by every hardware model in the repo.

The kernel intentionally stays small: components register themselves with a
:class:`Simulator`, the simulator advances a global cycle counter, and each
component's :meth:`Component.tick` is called exactly once per cycle of the
clock domain it belongs to.  Activity counters and signal traces hang off the
simulator so the power model can consume them after a run.
"""

from repro.sim.clock import ClockDomain
from repro.sim.component import Component
from repro.sim.activity import ActivityCounters
from repro.sim.simulator import Simulator, SimulationError
from repro.sim.trace import SignalTrace, TraceRecorder

__all__ = [
    "ActivityCounters",
    "ClockDomain",
    "Component",
    "SignalTrace",
    "SimulationError",
    "Simulator",
    "TraceRecorder",
]
