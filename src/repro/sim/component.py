"""Base class for all simulated hardware blocks."""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.sim.activity import ActivityCounters
from repro.sim.clock import ClockDomain

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from repro.sim.simulator import Simulator


class Component:
    """A named hardware block that is ticked once per clock cycle.

    Subclasses override :meth:`tick` (combinational + sequential behaviour for
    one cycle) and optionally :meth:`reset`.  Components record switching
    activity through :meth:`record`, which forwards to the owning simulator's
    :class:`~repro.sim.activity.ActivityCounters` once the component has been
    attached; activity recorded before attachment is buffered locally and
    merged at attach time so construction-time initialisation is not lost.

    **Wake protocol (event-driven simulation).**  The simulator may run in an
    event-driven mode that jumps over spans of cycles in which every component
    is *quiescent* instead of ticking each one cycle by cycle.  A component
    takes part by overriding two hooks:

    * :meth:`next_event` returns how many domain-local cycles from now the
      component next needs a real :meth:`tick` call — because an externally
      observable effect (an event pulse, a bus transfer, an interrupt, a
      register value another agent may act on) happens in that tick.  ``None``
      means the component schedules no wake of its own (it only reacts to
      external stimulus).  The returned horizon is a *promise*: the
      ``next_event() - 1`` ticks before the wake must be uniform quiescent
      ticks that :meth:`skip` can replay in one batch.
    * :meth:`skip` applies ``cycles`` worth of those quiescent ticks in O(1):
      batch-recording per-cycle activity (idle/sleep/active counters) and
      advancing deterministic internal counters, with *exactly* the state and
      activity a cycle-by-cycle replay would have produced.  It is called for
      every skipped span, including for components that returned ``None``.

    The defaults are conservative: a component that overrides :meth:`tick`
    but not :meth:`next_event` reports a wake every cycle (forcing dense
    stepping, today's behaviour), and a component that never overrides
    :meth:`tick` is trivially idle.  See ``docs/simulator.md`` for the full
    contract and a worked example.

    **Cached wake horizons.**  By default the scheduler re-polls
    :meth:`next_event` at every wake boundary.  A component may set the class
    attribute :attr:`wake_cacheable` to ``True`` to promise something
    stronger: its horizon only moves through (a) its own wake tick firing or
    (b) a state change that calls :meth:`wake_changed`.  The scheduler then
    caches the horizon as an absolute deadline and stops polling the
    component while it is idle — a quiescent-span computation costs
    O(active components) instead of O(all components).  Peripherals get the
    :meth:`wake_changed` calls for free: every register mutation notifies it
    (see :class:`~repro.peripherals.regfile.Register`).  Components with
    *reactive* wakes — horizons that can flip because of what another
    component did (a bus request landing, a FIFO filling, an interrupt
    pending) — must leave :attr:`wake_cacheable` at ``False``.
    """

    #: Opt-in flag for the cached wake-horizon scheduler (see class
    #: docstring).  ``False`` keeps the re-poll-every-boundary behaviour.
    wake_cacheable: bool = False

    def __init__(self, name: str) -> None:
        if not name:
            raise ValueError("component name must be non-empty")
        self.name = name
        self._simulator: Optional["Simulator"] = None
        self._clock: Optional[ClockDomain] = None
        self._local_activity = ActivityCounters()

    # ------------------------------------------------------------------ wiring

    def attach(self, simulator: "Simulator", clock: ClockDomain) -> None:
        """Bind the component to a simulator and clock domain.

        Called by :meth:`Simulator.add_component`; not meant to be called by
        user code directly.
        """
        if self._simulator is not None:
            raise RuntimeError(f"component {self.name!r} is already attached")
        self._simulator = simulator
        self._clock = clock
        simulator.activity.merge(self._local_activity)
        self._local_activity.clear()

    @property
    def simulator(self) -> "Simulator":
        """The owning simulator (raises if the component is not attached)."""
        if self._simulator is None:
            raise RuntimeError(f"component {self.name!r} is not attached to a simulator")
        return self._simulator

    @property
    def clock(self) -> ClockDomain:
        """The clock domain this component runs in."""
        if self._clock is None:
            raise RuntimeError(f"component {self.name!r} is not attached to a clock domain")
        return self._clock

    @property
    def is_attached(self) -> bool:
        """Whether the component has been added to a simulator."""
        return self._simulator is not None

    # ---------------------------------------------------------------- activity

    def record(self, event: str, amount: int = 1) -> None:
        """Record ``amount`` occurrences of ``event`` for this component."""
        if self._simulator is not None:
            self._simulator.activity.add(self.name, event, amount)
        else:
            self._local_activity.add(self.name, event, amount)

    # --------------------------------------------------------------- behaviour

    def tick(self, cycle: int) -> None:
        """Advance the component by one clock cycle.

        ``cycle`` is the domain-local cycle index.  The default implementation
        does nothing; purely combinational helpers may choose not to override.
        """

    def next_event(self) -> Optional[int]:
        """Domain-local cycles until this component next needs a real tick.

        Contract (see the class docstring): returning ``k >= 1`` guarantees
        the next ``k - 1`` ticks are quiescent and can be replayed by
        :meth:`skip`; returning ``None`` means the component never wakes on
        its own.  The default is maximally conservative — ``1`` (tick me every
        cycle) whenever :meth:`tick` is overridden, ``None`` when it is not
        (the inherited tick is a pure no-op).  Instance-assigned ``tick``
        attributes (test doubles, monkey-patches) count as overrides.
        """
        if type(self).tick is Component.tick and "tick" not in self.__dict__:
            return None
        return 1

    def wake_changed(self) -> None:
        """Tell the scheduler this component's cached wake horizon is stale.

        Must be called from every state transition that can move the wake of
        a :attr:`wake_cacheable` component — register writes, bus grants, DMA
        completions, event-line pulses.  Cheap (a set insertion) and safe to
        call redundantly or from components that are not cached at all; a
        no-op before the component is attached.
        """
        simulator = self._simulator
        if simulator is not None:
            simulator._notify_wake_changed(self)

    def skip(self, cycles: int) -> None:
        """Apply ``cycles`` quiescent ticks in one batch.

        Called by the event-driven scheduler instead of ``cycles`` individual
        :meth:`tick` calls when the whole system is provably quiescent.  The
        default does nothing, which is correct for components whose quiescent
        tick is a pure no-op; components that account per-cycle activity while
        idle (sleep counters, idle-cycle counters) must override this and
        batch-record it.
        """

    def reset(self) -> None:
        """Return the component to its post-reset state.

        Subclasses with internal state should override and call
        ``super().reset()``.
        """

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        domain = self._clock.name if self._clock is not None else "unattached"
        return f"{type(self).__name__}(name={self.name!r}, clock={domain})"
