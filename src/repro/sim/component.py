"""Base class for all simulated hardware blocks."""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.sim.activity import ActivityCounters
from repro.sim.clock import ClockDomain

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from repro.sim.simulator import Simulator


class Component:
    """A named hardware block that is ticked once per clock cycle.

    Subclasses override :meth:`tick` (combinational + sequential behaviour for
    one cycle) and optionally :meth:`reset`.  Components record switching
    activity through :meth:`record`, which forwards to the owning simulator's
    :class:`~repro.sim.activity.ActivityCounters` once the component has been
    attached; activity recorded before attachment is buffered locally and
    merged at attach time so construction-time initialisation is not lost.
    """

    def __init__(self, name: str) -> None:
        if not name:
            raise ValueError("component name must be non-empty")
        self.name = name
        self._simulator: Optional["Simulator"] = None
        self._clock: Optional[ClockDomain] = None
        self._local_activity = ActivityCounters()

    # ------------------------------------------------------------------ wiring

    def attach(self, simulator: "Simulator", clock: ClockDomain) -> None:
        """Bind the component to a simulator and clock domain.

        Called by :meth:`Simulator.add_component`; not meant to be called by
        user code directly.
        """
        if self._simulator is not None:
            raise RuntimeError(f"component {self.name!r} is already attached")
        self._simulator = simulator
        self._clock = clock
        simulator.activity.merge(self._local_activity)
        self._local_activity.clear()

    @property
    def simulator(self) -> "Simulator":
        """The owning simulator (raises if the component is not attached)."""
        if self._simulator is None:
            raise RuntimeError(f"component {self.name!r} is not attached to a simulator")
        return self._simulator

    @property
    def clock(self) -> ClockDomain:
        """The clock domain this component runs in."""
        if self._clock is None:
            raise RuntimeError(f"component {self.name!r} is not attached to a clock domain")
        return self._clock

    @property
    def is_attached(self) -> bool:
        """Whether the component has been added to a simulator."""
        return self._simulator is not None

    # ---------------------------------------------------------------- activity

    def record(self, event: str, amount: int = 1) -> None:
        """Record ``amount`` occurrences of ``event`` for this component."""
        if self._simulator is not None:
            self._simulator.activity.add(self.name, event, amount)
        else:
            self._local_activity.add(self.name, event, amount)

    # --------------------------------------------------------------- behaviour

    def tick(self, cycle: int) -> None:
        """Advance the component by one clock cycle.

        ``cycle`` is the domain-local cycle index.  The default implementation
        does nothing; purely combinational helpers may choose not to override.
        """

    def reset(self) -> None:
        """Return the component to its post-reset state.

        Subclasses with internal state should override and call
        ``super().reset()``.
        """

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        domain = self._clock.name if self._clock is not None else "unattached"
        return f"{type(self).__name__}(name={self.name!r}, clock={domain})"
