"""Backend contract for :class:`~repro.sim.batch.BatchSimulator`.

A batch backend owns the *scheduling round loop*: given the list of live
``(instance, state, dense)`` entries that :meth:`BatchSimulator.run` has
already plan-resolved, it advances every instance through all of its stops.
The semantics a backend must preserve are fixed by the reference
implementation (:class:`~repro.sim.backend.reference.PythonBackend`):

* every live instance advances exactly one span boundary per round, capped
  at its next stop (lockstep fairness);
* stops fire the moment their cycle is reached, in enrollment order within
  a round, with the instance paused exactly on the stop cycle;
* kernel stats (``next_event_calls``, ``dense_ticks``, ``spans_skipped``,
  ``cycles_skipped``) accumulate identically — a backend may *reorganise*
  the span computation (e.g. vectorise the cached-deadline min) but not
  change which component hooks run;
* a live instance that makes zero progress is a mis-wired scenario, not an
  infinite loop: backends raise :func:`stall_error` naming the instance.

Backends own the struct-of-arrays columns spanning the batch — base-tick,
start and next-stop cursors, liveness flags, and the wake-deadline matrix
whose rows are attached to each :class:`~repro.sim.simulator.SimState` via
:meth:`~repro.sim.simulator.SimState.attach_wake_row`.  Per-instance state
(heaps, dirty sets, divisors, activity) stays inside ``SimState``; the
columns are projections the backend derives and keeps in sync through the
write-through hooks.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Tuple

from repro.sim.simulator import SimState, SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.sim.batch import BatchInstance, BatchSimulator

#: One live batch entry: the instance, its bound state, and whether it is
#: forced dense (``simulator.dense`` or an unhinted ticking component).
LiveEntry = Tuple["BatchInstance", SimState, bool]


class BatchBackend:
    """Interface every batch backend implements."""

    #: Registry name (``"python"``, ``"numpy"``); recorded by the sweep
    #: layer in the manifest execution block.
    name: str = "abstract"

    def run(self, batch: "BatchSimulator", live: List[LiveEntry]) -> None:
        """Advance every live instance through all of its stops.

        ``batch`` is the owning :class:`BatchSimulator`; backends increment
        ``batch.rounds`` once per scheduling round.
        """
        raise NotImplementedError


def stall_error(instance: "BatchInstance") -> SimulationError:
    """The shared zero-progress diagnostic (same text in every backend)."""
    return SimulationError(
        f"batch instance {instance.label} made no progress at elapsed cycle "
        f"{instance.elapsed} with a stop pending at cycle {instance.next_stop}; "
        f"the scenario's wake scheduling is mis-wired (e.g. an empty wake heap "
        f"with work outstanding)"
    )
