"""Pluggable execution backends for batched multi-instance simulation.

:class:`~repro.sim.batch.BatchSimulator` delegates its scheduling round
loop to a backend resolved here:

* ``"python"`` — :class:`~repro.sim.backend.reference.PythonBackend`, the
  always-available pure-python reference loop and the semantics oracle
  every other backend is differentially tested against;
* ``"numpy"``  — :class:`~repro.sim.backend.vector.NumpyBackend`,
  struct-of-arrays span selection vectorised across the batch (requires
  numpy);
* ``"auto"`` (or ``None``) — numpy when importable, python otherwise.

The selection rules are deliberately boring: ``auto`` never errors, an
explicit ``"numpy"`` without numpy raises a clear
:class:`~repro.sim.simulator.SimulationError`, and the resolved name is
recorded (``BatchSimulator.backend_name``, the sweep manifest's
``execution.backend`` field) so a run's artifacts always say which loop
produced them.
"""

from __future__ import annotations

from typing import Tuple, Union

from repro.sim.backend.base import BatchBackend, LiveEntry, stall_error
from repro.sim.backend.reference import PythonBackend
from repro.sim.backend.vector import NumpyBackend, numpy_available
from repro.sim.simulator import SimulationError

#: Names accepted by :func:`resolve_backend` (and the sweep ``--backend``
#: flag).  ``auto`` resolves to the best available concrete backend.
BACKEND_CHOICES: Tuple[str, ...] = ("auto", "python", "numpy")


def available_backends() -> Tuple[str, ...]:
    """Concrete backend names constructible in this interpreter."""
    if numpy_available():
        return ("python", "numpy")
    return ("python",)


def resolve_backend(backend: Union[None, str, BatchBackend] = None) -> BatchBackend:
    """Resolve a backend name (or pass through an instance).

    ``None`` and ``"auto"`` select numpy when importable and fall back to
    the python reference otherwise; explicit names are honoured or fail
    loudly.
    """
    if isinstance(backend, BatchBackend):
        return backend
    if backend is None or backend == "auto":
        return NumpyBackend() if numpy_available() else PythonBackend()
    if backend == "python":
        return PythonBackend()
    if backend == "numpy":
        return NumpyBackend()
    raise SimulationError(
        f"unknown batch backend {backend!r}; choose from {', '.join(BACKEND_CHOICES)}"
    )


__all__ = [
    "BACKEND_CHOICES",
    "BatchBackend",
    "LiveEntry",
    "NumpyBackend",
    "PythonBackend",
    "available_backends",
    "numpy_available",
    "resolve_backend",
    "stall_error",
]
