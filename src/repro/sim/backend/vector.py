"""Numpy struct-of-arrays batch backend.

The per-instance scheduling cursors the reference backend keeps as Python
attributes become int64 columns spanning the batch:

* ``base``     — each instance's base-tick counter (mirror of
  ``SimState.base_tick``, advanced by this loop);
* ``start``    — the base tick at enrollment, so ``base - start`` is the
  instance-relative elapsed cycle;
* ``next_stop`` — the absolute base tick of the next pending stop;
* ``rows``     — the wake-deadline matrix: row *i* mirrors instance *i*'s
  cached ``deadlines`` (write-through from
  :meth:`~repro.sim.simulator.SimState.attach_wake_row`, with
  :data:`~repro.sim.simulator.WAKE_NONE` for "no deadline").

Each round then splits in three phases.  Phase 1 walks the live instances
once for the Python-object work that cannot be vectorised — dirty-deadline
re-polls and volatile ``next_event`` probes (which write through to
``rows``).  Phase 2 is the vectorised span selection: every instance's
earliest cached wake is one row-min, and the span is the element-wise min
of stop cap, volatile bound, and cached gap across the whole batch at
once.  Phase 3 applies each span (``skip_span`` + boundary ``dense_tick``)
and fires due stops in enrollment order, exactly like the reference
backend, so kernel stats, component hook sequences, and stop observation
order are identical by construction.

``numpy`` is optional: this module imports it guarded, and constructing
:class:`NumpyBackend` without it raises a clear
:class:`~repro.sim.simulator.SimulationError` (the ``auto`` selection in
:func:`repro.sim.backend.resolve_backend` never gets that far).
"""

from __future__ import annotations

from typing import List

from repro.obs import tracing
from repro.sim.backend.base import BatchBackend, LiveEntry, stall_error
from repro.sim.simulator import WAKE_NONE, SimulationError

try:  # pragma: no cover - exercised via the no-numpy CI leg
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None


def numpy_available() -> bool:
    """Whether the numpy backend can be constructed in this interpreter."""
    return _np is not None


class NumpyBackend(BatchBackend):
    """Vectorised span selection over struct-of-arrays columns."""

    name = "numpy"

    def __init__(self) -> None:
        if _np is None:
            raise SimulationError(
                "the numpy batch backend requires numpy, which is not "
                "importable; use the python backend (or backend='auto')"
            )

    def run(self, batch, live: List[LiveEntry]) -> None:
        np = _np
        entries = list(live)
        n = len(entries)
        if n == 0:
            return
        base = np.empty(n, dtype=np.int64)
        start = np.empty(n, dtype=np.int64)
        next_stop = np.empty(n, dtype=np.int64)
        width = 1
        for i, (instance, state, dense) in enumerate(entries):
            base[i] = state.base_tick
            start[i] = state.base_tick - instance.elapsed
            next_stop[i] = start[i] + instance.next_stop
            width = max(width, len(state.cached))
        rows = np.full((n, width), WAKE_NONE, dtype=np.int64)
        for i, (instance, state, dense) in enumerate(entries):
            if not dense:
                state.attach_wake_row(rows[i, : len(state.cached)])
        # Preallocated per-round buffers: the round loop runs tens of
        # thousands of times per batch, so it works in place (``out=``) and
        # converts numpy scalars to Python ints in bulk (``tolist``) rather
        # than one element at a time.
        vbounds = np.zeros(n, dtype=np.int64)
        limits = np.empty(n, dtype=np.int64)
        mins = np.empty(n, dtype=np.int64)
        gaps = np.empty(n, dtype=np.int64)
        spans = np.empty(n, dtype=np.int64)
        live_list = [(i,) + tuple(entry) for i, entry in enumerate(entries)]
        tracer = tracing.TRACER
        try:
            while live_list:
                batch.rounds += 1
                if tracer is not None and batch.rounds % 64 == 1:
                    tracer.counter("batch.live", "batch", {"instances": len(live_list)})
                np.subtract(next_stop, base, out=limits)
                limits_list = limits.tolist()
                # Phase 1: per-instance Python work — re-poll dirty cached
                # deadlines (writes through to `rows`) and probe volatile
                # components for this round's span cap.
                for i, instance, state, dense in live_list:
                    if not dense:
                        state.poll_dirty()
                        vbounds[i] = state.volatile_bound(limits_list[i])
                # Phase 2: vectorised span selection.  A gap <= 0 means a
                # cached deadline is due right now; volatile bounds are
                # never negative, so clamping min(vbound, gap) at zero is
                # exactly the "due now -> span 0, dense tick" rule.
                rows.min(axis=1, out=mins)
                np.subtract(mins, base, out=gaps)
                np.minimum(vbounds, gaps, out=spans)
                np.maximum(spans, 0, out=spans)
                spans_list = spans.tolist()
                # Phase 3: apply spans and fire due stops, in enrollment
                # order (the reference backend's observation order).
                still_live = []
                for item in live_list:
                    i, instance, state, dense = item
                    limit = limits_list[i]
                    if dense:
                        advanced = state.advance_span(limit, dense=True)
                    else:
                        span = spans_list[i]
                        if span > 0:
                            state.skip_span(span)
                        if span < limit:
                            state.dense_tick()
                            advanced = span + 1
                        else:
                            advanced = span
                    if advanced <= 0:
                        raise stall_error(instance)
                    base[i] += advanced
                    instance.elapsed += advanced
                    if instance.elapsed == instance.next_stop:
                        instance._fire_due_stops()
                        if instance.done:
                            continue
                        next_stop[i] = start[i] + instance.next_stop
                    still_live.append(item)
                live_list = still_live
        finally:
            for _, state, dense in entries:
                if not dense:
                    state.detach_wake_row()
