"""The pure-python reference backend — the batch semantics oracle.

This is the round loop :class:`~repro.sim.batch.BatchSimulator` has always
run, now behind the backend seam: one ``advance_span`` per live instance
per round, stops fired in enrollment order.  Every other backend is
validated against it (byte-identical sweep artifacts, identical kernel
stats, identical stop observation order — see
``tests/property/test_backend_differential.py``), so its behaviour is the
contract: change it only with the differential suite in hand.
"""

from __future__ import annotations

from typing import List

from repro.obs import tracing
from repro.sim.backend.base import BatchBackend, LiveEntry, stall_error


class PythonBackend(BatchBackend):
    """Per-instance Python round loop (always available, the reference)."""

    name = "python"

    def run(self, batch, live: List[LiveEntry]) -> None:
        tracer = tracing.TRACER
        live = list(live)
        while live:
            batch.rounds += 1
            if tracer is not None and batch.rounds % 64 == 1:
                tracer.counter("batch.live", "batch", {"instances": len(live)})
            still_live = []
            for entry in live:
                instance, state, dense = entry
                limit = instance.next_stop - instance.elapsed
                advanced = state.advance_span(limit, dense=dense)
                if advanced <= 0:
                    raise stall_error(instance)
                instance.elapsed += advanced
                instance._fire_due_stops()
                if not instance.done:
                    still_live.append(entry)
            live = still_live
