"""Batched multi-instance execution: advance N simulations together.

A sweep campaign runs many *instances* of the same scenario topology —
identical component structure, different parameters and horizons.  The
plan/state split in :mod:`repro.sim.simulator` makes those instances cheap
to co-schedule: every instance shares one interned
:class:`~repro.sim.simulator.SchedulePlan`, and each owns only its mutable
:class:`~repro.sim.simulator.SimState`.  :class:`BatchSimulator` is the
driver that advances such a set of instances **in lockstep over span
boundaries**: each scheduling round gives every live instance exactly one
boundary step (one quiescent-span skip plus the dense tick at its wake), so
the batch's progress interleaves at span granularity instead of running
instances one after another.

**Stops and shared prefixes.**  Each instance carries a sorted list of
*stops* — absolute cycle counts at which a callback fires while the
instance is paused exactly on that cycle.  The instance's quiescent spans
are capped at the next stop (the min over that instance's remaining
stops — the batched skip math replays one capped span for every stop it
serves), which is what lets one simulation serve several sweep points at
once: points that differ only in their horizon share the instance, and each
point snapshots its results at its own stop.  Because a span split at a
stop boundary is replayed through the same
:meth:`~repro.sim.component.Component.skip` contract as an uncapped span,
the state observed at a stop is byte-identical to a standalone run of that
horizon — the property the sweep layer's ``--batch`` mode builds its
artifact-identity guarantee on.

Callbacks observe the paused simulator (read counters, copy activity,
estimate power) and must not advance it; :class:`BatchSimulator` checks the
cycle counter after every callback and raises if one stepped the clock.

Instances do not interact and need not share a topology — heterogeneous
instances simply do not share a plan.  Each instance advances by its *own*
span per round; rounds are a fairness/interleaving discipline, not a shared
clock, so a slow instance never fragments the quiescent spans of a fast
one.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, List, Optional, Sequence, Tuple, Union

from repro.obs import tracing
from repro.sim.simulator import SimulationError, Simulator

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle)
    from repro.sim.backend.base import BatchBackend

#: A stop callback: receives the instance-relative elapsed cycle count; the
#: simulator is paused exactly on that cycle while the callback runs.
StopCallback = Callable[[int], None]


class BatchInstance:
    """One simulation enrolled in a :class:`BatchSimulator`.

    ``stops`` maps instance-relative cycle counts (measured from the cycle
    at which the instance was added) to callbacks.  The instance is finished
    once its last stop has fired.
    """

    def __init__(
        self,
        simulator: Simulator,
        stops: Sequence[Tuple[int, StopCallback]],
        label: Optional[str] = None,
    ) -> None:
        if not stops:
            raise SimulationError("a batch instance needs at least one stop")
        ordered = sorted(stops, key=lambda stop: stop[0])
        previous = 0
        for cycles, _ in ordered:
            if cycles < 1:
                raise SimulationError("batch stops must be at least one cycle out")
            if cycles == previous:
                raise SimulationError(
                    f"duplicate batch stop at cycle {cycles}; register one stop "
                    f"per cycle and fan out inside the callback"
                )
            previous = cycles
        self.simulator = simulator
        self.label = label if label is not None else repr(simulator)
        self.elapsed = 0
        self._stops: List[Tuple[int, StopCallback]] = ordered
        self._next = 0

    @property
    def horizon(self) -> int:
        """The last stop — the total cycles this instance will run."""
        return self._stops[-1][0]

    @property
    def done(self) -> bool:
        """Whether every stop has fired."""
        return self._next >= len(self._stops)

    @property
    def next_stop(self) -> int:
        """The next pending stop (raises when :attr:`done`)."""
        return self._stops[self._next][0]

    def _fire_due_stops(self) -> None:
        tracer = tracing.TRACER
        while not self.done and self._stops[self._next][0] == self.elapsed:
            cycles, callback = self._stops[self._next]
            self._next += 1
            before = self.simulator.current_cycle
            if tracer is None:
                callback(cycles)
            else:
                start_ns = tracer.now_ns()
                callback(cycles)
                tracer.event(
                    "batch.stop",
                    "batch",
                    start_ns,
                    tracer.now_ns() - start_ns,
                    {"label": self.label, "cycle": cycles},
                )
            if self.simulator.current_cycle != before:
                raise SimulationError(
                    f"batch stop callback at cycle {cycles} of {self.label} "
                    f"advanced the simulator; callbacks must only observe"
                )


class BatchSimulator:
    """Advance many simulator instances in lockstep over span boundaries.

    Usage::

        batch = BatchSimulator()
        batch.add(sim_a, [(30_000, snapshot_a1), (60_000, snapshot_a2)])
        batch.add(sim_b, [(60_000, snapshot_b)])
        batch.run()

    :meth:`run` loops scheduling rounds; in each round every unfinished
    instance advances exactly one span boundary, capped at its next stop.
    Stops fire as soon as their cycle is reached.  The batch is done when
    every instance has fired its last stop.

    The round loop itself is pluggable (:mod:`repro.sim.backend`):
    ``backend`` picks the pure-python reference loop (``"python"``), the
    vectorised struct-of-arrays loop (``"numpy"``), or the best available
    (``"auto"``/``None``, the default).  All backends produce identical
    component state, kernel stats, and stop observation order; the name of
    the loop that actually ran is recorded in :attr:`backend_name`.
    """

    def __init__(self, backend: Union[None, str, "BatchBackend"] = None) -> None:
        self.instances: List[BatchInstance] = []
        #: Scheduling rounds executed by :meth:`run` (diagnostics).
        self.rounds = 0
        self._backend = backend
        #: Name of the backend resolved by the last :meth:`run` call.
        self.backend_name: Optional[str] = None
        self._running = False

    def add(
        self,
        simulator: Simulator,
        stops: Sequence[Tuple[int, StopCallback]],
        label: Optional[str] = None,
    ) -> BatchInstance:
        """Enroll ``simulator`` with its ``(cycles, callback)`` stops."""
        if self._running:
            raise SimulationError(
                "cannot enroll an instance while the batch is running; "
                "build a second BatchSimulator for late arrivals"
            )
        for instance in self.instances:
            if instance.simulator is simulator:
                raise SimulationError(
                    f"simulator {instance.label} is already enrolled in this batch"
                )
        instance = BatchInstance(simulator, stops, label=label)
        self.instances.append(instance)
        return instance

    def run(self) -> None:
        """Advance every instance through all of its stops."""
        from repro.sim.backend import resolve_backend

        backend = resolve_backend(self._backend)
        self.backend_name = backend.name
        live: List[Tuple[BatchInstance, object, bool]] = []
        for instance in self.instances:
            if instance.done:
                continue
            simulator = instance.simulator
            # Resolve (and share) the plan once per instance up front; the
            # backend round loop then drives the bound state directly,
            # exactly like Simulator.step does for a single instance.
            plan = simulator._schedule_plan()
            dense = simulator.dense or plan.forces_dense
            live.append((instance, simulator._state, dense))
        self._running = True
        tracer = tracing.TRACER
        if tracer is None:
            try:
                backend.run(self, live)
            finally:
                self._running = False
            return
        start_ns = tracer.now_ns()
        try:
            backend.run(self, live)
        finally:
            self._running = False
            tracer.event(
                "batch.run",
                "batch",
                start_ns,
                tracer.now_ns() - start_ns,
                {
                    "instances": len(self.instances),
                    "backend": self.backend_name,
                    "rounds": self.rounds,
                },
            )
