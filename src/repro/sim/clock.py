"""Clock-domain abstraction.

Every component belongs to a :class:`ClockDomain`.  The simulator advances a
global *tick* counter at the frequency of the fastest domain; a domain whose
frequency is an integer divisor of the fastest frequency simply ticks less
often.  This is sufficient for the paper's evaluation, where the two relevant
operating points are 27 MHz and 55 MHz and only one domain is active per
scenario.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ClockDomain:
    """A named clock domain running at ``frequency_hz``.

    Parameters
    ----------
    name:
        Human-readable identifier, e.g. ``"soc"`` or ``"pels"``.
    frequency_hz:
        Clock frequency in hertz.  Must be positive.
    """

    name: str
    frequency_hz: float
    cycles: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.frequency_hz <= 0:
            raise ValueError(f"clock domain {self.name!r}: frequency must be positive")

    @property
    def period_s(self) -> float:
        """Clock period in seconds."""
        return 1.0 / self.frequency_hz

    @property
    def period_ns(self) -> float:
        """Clock period in nanoseconds."""
        return 1e9 / self.frequency_hz

    def cycles_for_time(self, seconds: float) -> int:
        """Number of full cycles elapsed in ``seconds`` of wall-clock time."""
        if seconds < 0:
            raise ValueError("time must be non-negative")
        return int(seconds * self.frequency_hz)

    def time_for_cycles(self, cycles: int) -> float:
        """Wall-clock time in seconds taken by ``cycles`` clock cycles."""
        if cycles < 0:
            raise ValueError("cycle count must be non-negative")
        return cycles / self.frequency_hz

    def advance(self, cycles: int = 1) -> None:
        """Advance the domain-local cycle counter."""
        if cycles < 0:
            raise ValueError("cannot advance by a negative number of cycles")
        self.cycles += cycles

    def reset(self) -> None:
        """Reset the domain-local cycle counter to zero."""
        self.cycles = 0
