"""Periodic timer with an overflow event line.

The timer is the canonical *producer* peripheral: "a periodic timer overflow
triggering an ADC conversion" is the first motivating example in the paper's
introduction.  It counts up every cycle while enabled and pulses its
``overflow`` event line when the counter reaches the compare value.
"""

from __future__ import annotations

from repro.peripherals.base import Peripheral
from repro.peripherals.events import EventFabric

CTRL_ENABLE = 0x1
CTRL_ONE_SHOT = 0x2
STATUS_OVERFLOW = 0x1


class Timer(Peripheral):
    """Up-counting timer with compare, prescaler, and overflow event.

    Register map (byte offsets):

    ========  =========  ====================================================
    offset    name       function
    ========  =========  ====================================================
    0x00      CTRL       bit0 enable, bit1 one-shot
    0x04      COUNT      current counter value (writable for preloading)
    0x08      COMPARE    overflow threshold (counter wraps to 0 on match)
    0x0C      PRESCALER  counter increments every PRESCALER + 1 cycles
    0x10      STATUS     bit0 overflow flag (write 1 to clear)
    ========  =========  ====================================================
    """

    #: Horizon depends only on this peripheral's registers and prescale
    #: counter; every mutation path notifies wake_changed.
    wake_cacheable = True

    def __init__(self, name: str = "timer", compare: int = 100) -> None:
        super().__init__(name)
        self.regs.define("CTRL", 0x00)
        self.regs.define("COUNT", 0x04)
        self.regs.define("COMPARE", 0x08, reset=compare)
        self.regs.define("PRESCALER", 0x0C)
        self.regs.define("STATUS", 0x10, write_one_to_clear=True)
        self._prescale_counter = 0
        self.overflow_count = 0

    def declare_events(self, fabric: EventFabric) -> None:
        self.add_output_event("overflow")

    def on_event_input(self, local_name: str) -> None:
        """Instant-action inputs: ``start`` and ``stop`` gate the counter."""
        super().on_event_input(local_name)
        ctrl = self.regs.reg("CTRL")
        if local_name == "start":
            ctrl.set_bits(CTRL_ENABLE)
        elif local_name == "stop":
            ctrl.clear_bits(CTRL_ENABLE)

    def tick(self, cycle: int) -> None:
        ctrl = self.regs.reg("CTRL").value
        if not ctrl & CTRL_ENABLE:
            return
        self.record("active_cycles")
        prescaler = self.regs.reg("PRESCALER").value
        self._prescale_counter += 1
        if self._prescale_counter <= prescaler:
            return
        self._prescale_counter = 0
        count_reg = self.regs.reg("COUNT")
        compare = self.regs.reg("COMPARE").value
        new_count = count_reg.value + 1
        if new_count >= max(compare, 1):
            count_reg.hw_write(0)
            self.regs.reg("STATUS").set_bits(STATUS_OVERFLOW)
            self.overflow_count += 1
            if self._fabric is not None:
                self.emit_event("overflow")
            if ctrl & CTRL_ONE_SHOT:
                self.regs.reg("CTRL").clear_bits(CTRL_ENABLE)
        else:
            count_reg.hw_write(new_count)

    # ------------------------------------------------------------ wake protocol

    def _ticks_to_overflow(self) -> int:
        """Ticks from now until the tick that pulses ``overflow``."""
        prescaler = self.regs.reg("PRESCALER").value
        prescale_counter = self._prescale_counter
        # The counter increments in the tick where the prescale counter,
        # post-increment, exceeds PRESCALER (it may already be above if the
        # register was lowered mid-run).
        ticks_to_increment = max(prescaler - prescale_counter + 1, 1)
        compare = max(self.regs.reg("COMPARE").value, 1)
        increments_needed = max(compare - self.regs.reg("COUNT").value, 1)
        return ticks_to_increment + (increments_needed - 1) * (prescaler + 1)

    def next_event(self):
        if not self.enabled:
            return None
        if not (
            self.regs.reg("CTRL").value & CTRL_ONE_SHOT
        ) and not self.event_observed("overflow"):
            # Consumer-aware fabric: a free-running timer whose overflow line
            # nothing consumes can run through any number of overflows;
            # :meth:`skip` replays wraps and pulse statistics exactly.  (A
            # one-shot timer disables itself at the overflow — a non-uniform
            # transition that must stay a real wake.)
            return None
        return self._ticks_to_overflow()

    def skip(self, cycles: int) -> None:
        if not self.enabled or cycles <= 0:
            return
        self.record("active_cycles", cycles)
        prescaler = self.regs.reg("PRESCALER").value
        ticks_to_increment = max(prescaler - self._prescale_counter + 1, 1)
        if cycles < ticks_to_increment:
            self._prescale_counter += cycles
            return
        increments = (cycles - ticks_to_increment) // (prescaler + 1) + 1
        self._prescale_counter = cycles - ticks_to_increment - (increments - 1) * (prescaler + 1)
        count_reg = self.regs.reg("COUNT")
        count = count_reg.value
        compare = max(self.regs.reg("COMPARE").value, 1)
        to_first_overflow = max(compare - count, 1)
        if increments < to_first_overflow:
            # No overflow inside the span (the only case when the line is
            # observed: the scheduler stops spans short of the overflow tick).
            count_reg.hw_write(count + increments)
            return
        overflows = 1 + (increments - to_first_overflow) // compare
        count_reg.hw_write((increments - to_first_overflow) % compare)
        self.regs.reg("STATUS").set_bits(STATUS_OVERFLOW)
        self.overflow_count += overflows
        self.account_skipped_events("overflow", overflows)

    @property
    def enabled(self) -> bool:
        """Whether the counter is currently running."""
        return bool(self.regs.reg("CTRL").value & CTRL_ENABLE)

    def start(self) -> None:
        """Software helper: enable the counter."""
        self.regs.reg("CTRL").set_bits(CTRL_ENABLE)

    def stop(self) -> None:
        """Software helper: disable the counter."""
        self.regs.reg("CTRL").clear_bits(CTRL_ENABLE)

    def reset(self) -> None:
        super().reset()
        self._prescale_counter = 0
        self.overflow_count = 0
