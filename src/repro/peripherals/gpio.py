"""General-purpose I/O block.

The GPIO is the canonical *consumer* peripheral in the paper's examples: a
PELS sequenced action toggles a pad through the ``toggle``/``set``/``clear``
register semantics, or an instant action drives the pad directly through a
single-wire event input (the "set AGPIO MASK" alternative in Figure 3).
"""

from __future__ import annotations

from repro.peripherals.base import Peripheral
from repro.peripherals.events import EventFabric

GPIO_WIDTH = 32


class Gpio(Peripheral):
    """A 32-bit GPIO bank with direction, output, set/clear/toggle registers.

    Register map (byte offsets):

    ========  =========  =======================================================
    offset    name       function
    ========  =========  =======================================================
    0x00      DIR        1 = output, 0 = input, per pad
    0x04      OUT        output latch (read back current latch)
    0x08      IN         input sample (read only)
    0x0C      SET        write-1-to-set pads in OUT
    0x10      CLEAR      write-1-to-clear pads in OUT
    0x14      TOGGLE     write-1-to-toggle pads in OUT
    0x18      RISE_EVT   pads whose rising edge pulses the ``rise`` event line
    ========  =========  =======================================================
    """

    def __init__(self, name: str = "gpio") -> None:
        super().__init__(name)
        self.regs.define("DIR", 0x00)
        self.regs.define("OUT", 0x04, on_write=self._on_out_write)
        self.regs.define("IN", 0x08, writable_mask=0)
        self.regs.define("SET", 0x0C, on_write=self._on_set)
        self.regs.define("CLEAR", 0x10, on_write=self._on_clear)
        self.regs.define("TOGGLE", 0x14, on_write=self._on_toggle)
        self.regs.define("RISE_EVT", 0x18)
        self.toggle_count = 0
        self._previous_out = 0

    # --------------------------------------------------------------- events

    def declare_events(self, fabric: EventFabric) -> None:
        self.add_output_event("rise")

    def on_event_input(self, local_name: str) -> None:
        """Instant-action input: ``set_pad0`` sets pad 0, ``toggle_pad0`` toggles it."""
        super().on_event_input(local_name)
        out = self.regs.reg("OUT")
        if local_name == "set_pad0":
            out.set_bits(0x1)
        elif local_name == "clear_pad0":
            out.clear_bits(0x1)
        elif local_name == "toggle_pad0":
            out.hw_write(out.value ^ 0x1)
            self.toggle_count += 1

    # ----------------------------------------------------------- register hooks

    def _on_out_write(self, value: int) -> None:
        self._detect_edges()

    def _on_set(self, value: int) -> None:
        self.regs.reg("OUT").set_bits(value)
        self.regs.reg("SET").hw_write(0)
        self._detect_edges()

    def _on_clear(self, value: int) -> None:
        self.regs.reg("OUT").clear_bits(value)
        self.regs.reg("CLEAR").hw_write(0)
        self._detect_edges()

    def _on_toggle(self, value: int) -> None:
        out = self.regs.reg("OUT")
        out.hw_write(out.value ^ value)
        self.regs.reg("TOGGLE").hw_write(0)
        self.toggle_count += 1
        self._detect_edges()

    def _detect_edges(self) -> None:
        current = self.regs.reg("OUT").value
        rising = current & ~self._previous_out
        watch = self.regs.reg("RISE_EVT").value
        if rising & watch and self._fabric is not None:
            self.emit_event("rise")
        self._previous_out = current

    # ----------------------------------------------------------------- queries

    @property
    def output_value(self) -> int:
        """Current value of the output latch."""
        return self.regs.reg("OUT").value

    def pad(self, index: int) -> bool:
        """Logic level currently driven on pad ``index``."""
        if not 0 <= index < GPIO_WIDTH:
            raise ValueError(f"pad index must be in [0, {GPIO_WIDTH})")
        return bool((self.output_value >> index) & 0x1)

    def drive_input(self, value: int) -> None:
        """Testbench helper: set the IN register (external pad levels)."""
        self.regs.reg("IN").hw_write(value)

    def reset(self) -> None:
        super().reset()
        self.toggle_count = 0
        self._previous_out = 0
