"""Analog-to-digital converter model.

The ADC converts a :class:`~repro.peripherals.sensor.SyntheticSensor` sample
after a programmable conversion time and pulses an ``eoc`` (end of
conversion) event line.  A conversion is started either by software/PELS
writing the START bit or instantly through the ``soc`` (start-of-conversion)
event input — the paper's "timer overflow triggers an ADC conversion"
scenario uses the latter.
"""

from __future__ import annotations

from typing import Optional

from repro.peripherals.base import Peripheral
from repro.peripherals.events import EventFabric
from repro.peripherals.sensor import SyntheticSensor

CTRL_START = 0x1
CTRL_CONTINUOUS = 0x2
STATUS_EOC = 0x1
STATUS_BUSY = 0x2


class Adc(Peripheral):
    """Single-channel ADC with programmable conversion latency.

    Register map (byte offsets):

    ========  ============  ==================================================
    offset    name          function
    ========  ============  ==================================================
    0x00      CTRL          bit0 start (self-clearing), bit1 continuous mode
    0x04      DATA          last conversion result (read only)
    0x08      STATUS        bit0 end-of-conversion flag (W1C), bit1 busy
    0x0C      CONV_CYCLES   conversion time in cycles (>= 1)
    ========  ============  ==================================================
    """

    #: Conversion starts (register or event input) always touch STATUS, so
    #: the register-file notify covers every horizon change.
    wake_cacheable = True

    def __init__(
        self,
        name: str = "adc",
        sensor: Optional[SyntheticSensor] = None,
        conversion_cycles: int = 8,
    ) -> None:
        super().__init__(name)
        if conversion_cycles < 1:
            raise ValueError("conversion_cycles must be >= 1")
        self.sensor = sensor if sensor is not None else SyntheticSensor(f"{name}_sensor")
        self.regs.define("CTRL", 0x00, on_write=self._on_ctrl_write)
        self.regs.define("DATA", 0x04, writable_mask=0)
        self.regs.define("STATUS", 0x08, write_one_to_clear=True)
        self.regs.define("CONV_CYCLES", 0x0C, reset=conversion_cycles)
        self._remaining = 0
        self.conversions = 0

    def declare_events(self, fabric: EventFabric) -> None:
        self.add_output_event("eoc")

    def on_event_input(self, local_name: str) -> None:
        """``soc`` (start of conversion) input kicks off a conversion."""
        super().on_event_input(local_name)
        if local_name == "soc":
            self._start_conversion()

    def _on_ctrl_write(self, value: int) -> None:
        if value & CTRL_START:
            self.regs.reg("CTRL").clear_bits(CTRL_START)
            self._start_conversion()

    def _start_conversion(self) -> None:
        if self.busy:
            self.record("start_while_busy")
            return
        self._remaining = max(self.regs.reg("CONV_CYCLES").value, 1)
        self.regs.reg("STATUS").set_bits(STATUS_BUSY)
        self.record("conversions_started")

    def tick(self, cycle: int) -> None:
        if self._remaining <= 0:
            return
        self.record("converting_cycles")
        self._remaining -= 1
        if self._remaining > 0:
            return
        sample = self.sensor.next_sample()
        self.regs.reg("DATA").hw_write(sample)
        status = self.regs.reg("STATUS")
        status.clear_bits(STATUS_BUSY)
        status.set_bits(STATUS_EOC)
        self.conversions += 1
        if self._fabric is not None:
            self.emit_event("eoc")
        if self.regs.reg("CTRL").value & CTRL_CONTINUOUS:
            self._start_conversion()

    # ------------------------------------------------------------ wake protocol

    def next_event(self):
        if self._remaining <= 0:
            return None
        return self._remaining

    def skip(self, cycles: int) -> None:
        if self._remaining <= 0:
            return
        self.record("converting_cycles", cycles)
        self._remaining -= cycles

    @property
    def busy(self) -> bool:
        """Whether a conversion is in progress."""
        return self._remaining > 0

    @property
    def last_sample(self) -> int:
        """Most recent conversion result."""
        return self.regs.reg("DATA").value

    def reset(self) -> None:
        super().reset()
        self._remaining = 0
        self.conversions = 0
