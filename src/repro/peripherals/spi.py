"""SPI controller model.

The functional evaluation in the paper performs a "threshold-crossing check
after I/O DMA-managed sensor readout through the SPI interface".  The model
therefore focuses on the receive path: a transfer of N words is started (by
software, PELS, or the µDMA), each word takes a programmable number of cycles
on the (virtual) serial interface, received words land in an RX FIFO, and an
``eot`` (end of transfer) event is pulsed when the requested length
completes.  The serial counterparty is a :class:`SyntheticSensor`.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.peripherals.base import Peripheral
from repro.peripherals.events import EventFabric
from repro.peripherals.sensor import SyntheticSensor

CTRL_START = 0x1
STATUS_EOT = 0x1
STATUS_BUSY = 0x2
STATUS_RX_AVAILABLE = 0x4
DEFAULT_RX_FIFO_DEPTH = 8


class SpiController(Peripheral):
    """SPI master with RX FIFO, per-word timing, and end-of-transfer event.

    Register map (byte offsets):

    ========  =============  =================================================
    offset    name           function
    ========  =============  =================================================
    0x00      CTRL           bit0 start transfer (self-clearing)
    0x04      LEN            number of words in the transfer
    0x08      RXDATA         pop one word from the RX FIFO (read side effect)
    0x0C      STATUS         bit0 EOT flag (W1C), bit1 busy, bit2 RX available
    0x10      CLK_DIV        cycles per received word (>= 1)
    0x14      AFLAG          application flag register used by Figure 3's
                             ``clear AFLAG MASK`` command
    ========  =============  =================================================
    """

    #: Transfer starts (register or event input) always touch STATUS, so the
    #: register-file notify covers every horizon change; FIFO drains by the
    #: µDMA do not move the wake (it tracks the shift timer, not the FIFO).
    wake_cacheable = True

    def __init__(
        self,
        name: str = "spi",
        sensor: Optional[SyntheticSensor] = None,
        cycles_per_word: int = 4,
        rx_fifo_depth: int = DEFAULT_RX_FIFO_DEPTH,
    ) -> None:
        super().__init__(name)
        if cycles_per_word < 1:
            raise ValueError("cycles_per_word must be >= 1")
        if rx_fifo_depth < 1:
            raise ValueError("rx_fifo_depth must be >= 1")
        self.sensor = sensor if sensor is not None else SyntheticSensor(f"{name}_sensor")
        self.rx_fifo_depth = rx_fifo_depth
        self.regs.define("CTRL", 0x00, on_write=self._on_ctrl_write)
        self.regs.define("LEN", 0x04, reset=1)
        self.regs.define("RXDATA", 0x08, writable_mask=0, on_read=self._on_rxdata_read)
        self.regs.define("STATUS", 0x0C, write_one_to_clear=True)
        self.regs.define("CLK_DIV", 0x10, reset=cycles_per_word)
        self.regs.define("AFLAG", 0x14)
        self._rx_fifo: Deque[int] = deque()
        self._words_remaining = 0
        self._word_timer = 0
        self.transfers_completed = 0
        self.words_received = 0
        self.rx_overflows = 0

    # ----------------------------------------------------------------- events

    def declare_events(self, fabric: EventFabric) -> None:
        self.add_output_event("eot")
        self.add_output_event("rx_ready")

    def on_event_input(self, local_name: str) -> None:
        """``start`` input begins a transfer with the current LEN setting."""
        super().on_event_input(local_name)
        if local_name == "start":
            self._start_transfer()

    # --------------------------------------------------------- register hooks

    def _on_ctrl_write(self, value: int) -> None:
        if value & CTRL_START:
            self.regs.reg("CTRL").clear_bits(CTRL_START)
            self._start_transfer()

    def _on_rxdata_read(self) -> None:
        if self._rx_fifo:
            self.regs.reg("RXDATA").hw_write(self._rx_fifo.popleft())
        if not self._rx_fifo:
            self.regs.reg("STATUS").clear_bits(STATUS_RX_AVAILABLE)

    # --------------------------------------------------------------- behaviour

    def _start_transfer(self) -> None:
        if self.busy:
            self.record("start_while_busy")
            return
        length = max(self.regs.reg("LEN").value, 1)
        self._words_remaining = length
        self._word_timer = max(self.regs.reg("CLK_DIV").value, 1)
        self.regs.reg("STATUS").set_bits(STATUS_BUSY)
        self.record("transfers_started")

    def tick(self, cycle: int) -> None:
        if self._words_remaining <= 0:
            return
        self.record("shifting_cycles")
        self._word_timer -= 1
        if self._word_timer > 0:
            return
        self._receive_word()
        self._words_remaining -= 1
        if self._words_remaining > 0:
            self._word_timer = max(self.regs.reg("CLK_DIV").value, 1)
            return
        status = self.regs.reg("STATUS")
        status.clear_bits(STATUS_BUSY)
        status.set_bits(STATUS_EOT)
        self.transfers_completed += 1
        if self._fabric is not None:
            self.emit_event("eot")

    def _receive_word(self) -> None:
        word = self.sensor.next_sample()
        if len(self._rx_fifo) >= self.rx_fifo_depth:
            self._rx_fifo.popleft()
            self.rx_overflows += 1
            self.record("rx_overflows")
        self._rx_fifo.append(word)
        self.words_received += 1
        self.regs.reg("STATUS").set_bits(STATUS_RX_AVAILABLE)
        # RXDATA mirrors the most recently received word so a linking agent
        # that reads it after the µDMA drained the FIFO still sees the last
        # sample of the transfer (the value the threshold check needs).
        self.regs.reg("RXDATA").hw_write(word)
        if self._fabric is not None:
            self.emit_event("rx_ready")

    # ------------------------------------------------------------ wake protocol

    def next_event(self):
        if self._words_remaining <= 0:
            return None
        # Receiving a word pulses ``rx_ready`` (and possibly ``eot``), so the
        # wake is the tick in which the per-word timer expires.
        return max(self._word_timer, 1)

    def skip(self, cycles: int) -> None:
        if self._words_remaining <= 0:
            return
        self.record("shifting_cycles", cycles)
        self._word_timer -= cycles

    # ----------------------------------------------------------------- queries

    @property
    def busy(self) -> bool:
        """Whether a transfer is in progress."""
        return self._words_remaining > 0

    @property
    def rx_level(self) -> int:
        """Number of words currently waiting in the RX FIFO."""
        return len(self._rx_fifo)

    def pop_rx(self) -> int:
        """µDMA-side helper: pop the oldest received word."""
        if not self._rx_fifo:
            raise RuntimeError(f"{self.name}: RX FIFO is empty")
        word = self._rx_fifo.popleft()
        if not self._rx_fifo:
            self.regs.reg("STATUS").clear_bits(STATUS_RX_AVAILABLE)
        return word

    def reset(self) -> None:
        super().reset()
        self._rx_fifo.clear()
        self._words_remaining = 0
        self._word_timer = 0
        self.transfers_completed = 0
        self.words_received = 0
        self.rx_overflows = 0
