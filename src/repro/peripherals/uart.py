"""UART model.

The UART is not part of the paper's measured workload but PULPissimo ships
one and the examples use it as a second consumer peripheral (e.g. emitting an
alert byte when a threshold crossing is detected).  Only the transmit path is
modelled in detail; the receive path accepts injected bytes for tests.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List

from repro.peripherals.base import Peripheral
from repro.peripherals.events import EventFabric

STATUS_TX_BUSY = 0x1
STATUS_TX_DONE = 0x2
STATUS_RX_AVAILABLE = 0x4
DEFAULT_CYCLES_PER_BYTE = 10  # 8N1 framing: start + 8 data + stop bits


class Uart(Peripheral):
    """UART with a TX shift timer and TX-done event line.

    Register map (byte offsets):

    ========  ===========  ===================================================
    offset    name         function
    ========  ===========  ===================================================
    0x00      TXDATA       write a byte to transmit
    0x04      RXDATA       read the oldest received byte
    0x08      STATUS       bit0 TX busy, bit1 TX done (W1C), bit2 RX available
    0x0C      BAUD_CYCLES  cycles per transmitted byte (>= 1)
    ========  ===========  ===================================================
    """

    #: TX submissions go through TXDATA (STATUS set_bits), so the register
    #: notify covers every horizon change.
    wake_cacheable = True

    def __init__(self, name: str = "uart", cycles_per_byte: int = DEFAULT_CYCLES_PER_BYTE) -> None:
        super().__init__(name)
        if cycles_per_byte < 1:
            raise ValueError("cycles_per_byte must be >= 1")
        self.regs.define("TXDATA", 0x00, on_write=self._on_tx_write)
        self.regs.define("RXDATA", 0x04, writable_mask=0, on_read=self._on_rx_read)
        self.regs.define("STATUS", 0x08, write_one_to_clear=True)
        self.regs.define("BAUD_CYCLES", 0x0C, reset=cycles_per_byte)
        self._tx_queue: Deque[int] = deque()
        self._rx_queue: Deque[int] = deque()
        self._tx_timer = 0
        self.transmitted: List[int] = []

    def declare_events(self, fabric: EventFabric) -> None:
        self.add_output_event("tx_done")
        self.add_output_event("rx_ready")

    def _on_tx_write(self, value: int) -> None:
        self._tx_queue.append(value & 0xFF)
        self.regs.reg("STATUS").set_bits(STATUS_TX_BUSY)

    def _on_rx_read(self) -> None:
        if self._rx_queue:
            self.regs.reg("RXDATA").hw_write(self._rx_queue.popleft())
        if not self._rx_queue:
            self.regs.reg("STATUS").clear_bits(STATUS_RX_AVAILABLE)

    def tick(self, cycle: int) -> None:
        if not self._tx_queue:
            return
        self.record("tx_cycles")
        if self._tx_timer == 0:
            self._tx_timer = max(self.regs.reg("BAUD_CYCLES").value, 1)
        self._tx_timer -= 1
        if self._tx_timer > 0:
            return
        byte = self._tx_queue.popleft()
        self.transmitted.append(byte)
        status = self.regs.reg("STATUS")
        status.set_bits(STATUS_TX_DONE)
        if not self._tx_queue:
            status.clear_bits(STATUS_TX_BUSY)
        if self._fabric is not None:
            self.emit_event("tx_done")

    def inject_rx(self, byte: int) -> None:
        """Testbench helper: deliver a received byte."""
        self._rx_queue.append(byte & 0xFF)
        self.regs.reg("STATUS").set_bits(STATUS_RX_AVAILABLE)
        if not self.regs.reg("RXDATA").value and len(self._rx_queue) == 1:
            self.regs.reg("RXDATA").hw_write(self._rx_queue[0])
        if self._fabric is not None:
            self.emit_event("rx_ready")

    # ------------------------------------------------------------ wake protocol

    def next_event(self):
        if not self._tx_queue:
            return None
        # The shift timer reloads lazily in the first busy tick, so a timer of
        # zero means a full byte time is still ahead.
        if self._tx_timer > 0:
            return self._tx_timer
        return max(self.regs.reg("BAUD_CYCLES").value, 1)

    def skip(self, cycles: int) -> None:
        if not self._tx_queue:
            return
        self.record("tx_cycles", cycles)
        if self._tx_timer == 0:
            self._tx_timer = max(self.regs.reg("BAUD_CYCLES").value, 1)
        self._tx_timer -= cycles

    @property
    def tx_busy(self) -> bool:
        """Whether bytes are still waiting to go out."""
        return bool(self._tx_queue)

    def reset(self) -> None:
        super().reset()
        self._tx_queue.clear()
        self._rx_queue.clear()
        self._tx_timer = 0
        self.transmitted = []
