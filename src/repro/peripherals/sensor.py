"""Synthetic analog sensor.

The paper's functional evaluation reads a thermistor/varistor through SPI (or
an ADC) and checks the sample against a threshold.  We do not have the
physical sensor, so :class:`SyntheticSensor` generates deterministic sample
streams (constant, ramp, sine, step, or an explicit sequence) that the ADC and
SPI models expose to the digital side.  The substitution preserves the code
path the paper exercises: the sample value is produced outside the processing
domain and only its threshold crossing matters.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

SAMPLE_MASK = 0xFFFF_FFFF


@dataclass
class SensorWaveform:
    """Deterministic waveform description for :class:`SyntheticSensor`.

    ``kind`` selects the generator:

    * ``"constant"`` — always ``amplitude``.
    * ``"ramp"`` — starts at ``offset`` and increases by ``step`` per sample,
      wrapping at ``amplitude``.
    * ``"sine"`` — ``offset + amplitude * sin(2*pi*n/period)`` rounded to int.
    * ``"step"`` — ``offset`` for the first ``period`` samples, then
      ``offset + amplitude``.
    * ``"sequence"`` — replays ``values`` cyclically.
    """

    kind: str = "constant"
    amplitude: int = 100
    offset: int = 0
    step: int = 1
    period: int = 16
    values: Sequence[int] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        valid = {"constant", "ramp", "sine", "step", "sequence"}
        if self.kind not in valid:
            raise ValueError(f"unknown waveform kind {self.kind!r}; expected one of {sorted(valid)}")
        if self.kind == "sequence" and not self.values:
            raise ValueError("sequence waveform requires a non-empty values list")
        if self.period <= 0:
            raise ValueError("waveform period must be positive")

    def sample(self, index: int) -> int:
        """Value of sample number ``index`` (non-negative)."""
        if index < 0:
            raise ValueError("sample index must be non-negative")
        if self.kind == "constant":
            value = self.amplitude
        elif self.kind == "ramp":
            span = max(self.amplitude, 1)
            value = self.offset + (index * self.step) % span
        elif self.kind == "sine":
            value = self.offset + round(self.amplitude * math.sin(2 * math.pi * index / self.period))
        elif self.kind == "step":
            value = self.offset if index < self.period else self.offset + self.amplitude
        else:  # sequence
            value = int(self.values[index % len(self.values)])
        return value & SAMPLE_MASK


class SyntheticSensor:
    """A sample source with an optional waveform and manual override queue.

    The sensor is *not* a bus slave: it models the analog world.  The ADC and
    SPI peripherals pull samples from it.
    """

    def __init__(self, name: str = "sensor", waveform: Optional[SensorWaveform] = None) -> None:
        self.name = name
        self.waveform = waveform if waveform is not None else SensorWaveform()
        self._sample_index = 0
        self._override_queue: List[int] = []
        self.samples_produced = 0

    def push_sample(self, value: int) -> None:
        """Queue an explicit next sample (takes priority over the waveform)."""
        if not 0 <= value <= SAMPLE_MASK:
            raise ValueError("sensor samples must fit in 32 bits")
        self._override_queue.append(value)

    def push_samples(self, values: Sequence[int]) -> None:
        """Queue several explicit samples in order."""
        for value in values:
            self.push_sample(value)

    def next_sample(self) -> int:
        """Produce the next sample (override queue first, then the waveform)."""
        if self._override_queue:
            value = self._override_queue.pop(0)
        else:
            value = self.waveform.sample(self._sample_index)
        self._sample_index += 1
        self.samples_produced += 1
        return value

    def peek_next(self) -> int:
        """Return the next sample without consuming it."""
        if self._override_queue:
            return self._override_queue[0]
        return self.waveform.sample(self._sample_index)

    def reset(self) -> None:
        """Restart the waveform and drop queued overrides."""
        self._sample_index = 0
        self._override_queue.clear()
        self.samples_produced = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SyntheticSensor(name={self.name!r}, kind={self.waveform.kind!r}, produced={self.samples_produced})"
