"""Memory-mapped register files.

Every peripheral (and PELS itself) exposes its software interface as a
:class:`RegisterFile`: a set of named 32-bit :class:`Register` objects at
word-aligned byte offsets, with optional read-only bits, write-one-to-clear
semantics, and side-effect callbacks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

WORD_MASK = 0xFFFF_FFFF
WORD_BYTES = 4


class RegisterError(RuntimeError):
    """Raised on invalid register definitions or accesses."""


@dataclass
class Register:
    """One 32-bit software-visible register.

    Parameters
    ----------
    name:
        Register name, unique within its file.
    offset:
        Byte offset within the peripheral's address window (word aligned).
    reset:
        Reset value.
    writable_mask:
        Bits software (or PELS) may modify; writes to other bits are ignored.
    write_one_to_clear:
        If true, writing a 1 to a bit clears it instead of setting it
        (typical for interrupt/event flag registers).
    on_write:
        Optional callback invoked after the stored value is updated, with the
        value that was written (before masking).  Used for command registers.
    on_read:
        Optional callback invoked before the value is returned; may be used to
        model volatile registers (e.g. a FIFO data register).

    In addition to the per-register callbacks, every *mutation* (software
    write, hardware ``set_bits``/``clear_bits``/``hw_write``, reset) fires the
    file-level :attr:`notify` hook when one is installed.  The event-driven
    scheduler uses it to invalidate cached wake horizons: any register change
    can move a peripheral's next wake, so the owning component's
    :meth:`~repro.sim.component.Component.wake_changed` is wired in by
    :meth:`~repro.peripherals.base.Peripheral.attach`.
    """

    name: str
    offset: int
    reset: int = 0
    writable_mask: int = WORD_MASK
    write_one_to_clear: bool = False
    on_write: Optional[Callable[[int], None]] = None
    on_read: Optional[Callable[[], None]] = None
    #: File-level mutation hook (see class docstring); installed by
    #: :meth:`RegisterFile.set_notify`, not per register.
    notify: Optional[Callable[[], None]] = field(default=None, repr=False, compare=False)
    value: int = field(init=False)

    def __post_init__(self) -> None:
        if self.offset < 0 or self.offset % WORD_BYTES != 0:
            raise RegisterError(f"register {self.name!r}: offset must be word aligned and >= 0")
        if not 0 <= self.reset <= WORD_MASK:
            raise RegisterError(f"register {self.name!r}: reset value must fit in 32 bits")
        self.value = self.reset

    def read(self) -> int:
        """Return the current value, invoking the read side effect if any."""
        if self.on_read is not None:
            self.on_read()
        return self.value & WORD_MASK

    def write(self, value: int) -> None:
        """Update the register with ``value`` honouring masks and W1C bits."""
        value &= WORD_MASK
        if self.write_one_to_clear:
            self.value &= ~(value & self.writable_mask) & WORD_MASK
        else:
            preserved = self.value & ~self.writable_mask
            self.value = preserved | (value & self.writable_mask)
        if self.on_write is not None:
            self.on_write(value)
        if self.notify is not None:
            self.notify()

    def set_bits(self, mask: int) -> None:
        """Hardware-side helper: set bits regardless of the writable mask."""
        self.value = (self.value | mask) & WORD_MASK
        if self.notify is not None:
            self.notify()

    def clear_bits(self, mask: int) -> None:
        """Hardware-side helper: clear bits regardless of the writable mask."""
        self.value &= ~mask & WORD_MASK
        if self.notify is not None:
            self.notify()

    def hw_write(self, value: int) -> None:
        """Hardware-side helper: overwrite the stored value without on_write."""
        self.value = value & WORD_MASK
        if self.notify is not None:
            self.notify()

    def reset_value(self) -> None:
        """Restore the reset value."""
        self.value = self.reset
        if self.notify is not None:
            self.notify()


class RegisterFile:
    """An offset-indexed collection of :class:`Register` objects."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._by_offset: Dict[int, Register] = {}
        self._by_name: Dict[str, Register] = {}
        self._notify: Optional[Callable[[], None]] = None

    def add(self, register: Register) -> Register:
        """Add a register; offsets and names must be unique."""
        if register.offset in self._by_offset:
            raise RegisterError(
                f"{self.name}: offset 0x{register.offset:x} already used by "
                f"{self._by_offset[register.offset].name!r}"
            )
        if register.name in self._by_name:
            raise RegisterError(f"{self.name}: register name {register.name!r} already used")
        register.notify = self._notify
        self._by_offset[register.offset] = register
        self._by_name[register.name] = register
        return register

    def set_notify(self, callback: Optional[Callable[[], None]]) -> None:
        """Install (or clear) the mutation hook on every register, current and
        future.  Used by the wake-invalidation protocol (see :class:`Register`)."""
        self._notify = callback
        for register in self._by_offset.values():
            register.notify = callback

    def define(self, name: str, offset: int, **kwargs: object) -> Register:
        """Create and add a register in one call."""
        register = Register(name=name, offset=offset, **kwargs)  # type: ignore[arg-type]
        return self.add(register)

    def reg(self, name: str) -> Register:
        """Look up a register by name."""
        try:
            return self._by_name[name]
        except KeyError as exc:
            raise RegisterError(f"{self.name}: unknown register {name!r}") from exc

    def at_offset(self, offset: int) -> Register:
        """Look up a register by byte offset."""
        try:
            return self._by_offset[offset]
        except KeyError as exc:
            raise RegisterError(f"{self.name}: no register at offset 0x{offset:x}") from exc

    def offset_of(self, name: str) -> int:
        """Byte offset of the register called ``name``."""
        return self.reg(name).offset

    def read(self, offset: int) -> int:
        """Bus-facing read at ``offset``; unmapped offsets read as zero."""
        register = self._by_offset.get(offset)
        if register is None:
            return 0
        return register.read()

    def write(self, offset: int, value: int) -> None:
        """Bus-facing write at ``offset``; unmapped offsets are ignored."""
        register = self._by_offset.get(offset)
        if register is not None:
            register.write(value)

    def reset(self) -> None:
        """Restore every register to its reset value."""
        for register in self._by_offset.values():
            register.reset_value()

    def registers(self) -> Tuple[Register, ...]:
        """All registers sorted by offset."""
        return tuple(self._by_offset[offset] for offset in sorted(self._by_offset))

    @property
    def size_bytes(self) -> int:
        """Smallest power-of-two-free window size covering all offsets."""
        if not self._by_offset:
            return WORD_BYTES
        return max(self._by_offset) + WORD_BYTES

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __len__(self) -> int:
        return len(self._by_offset)
