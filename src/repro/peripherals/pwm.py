"""PWM (pulse-width modulation) timer.

The PWM block is the classic *actuator-side* client of an event-linking
system: an ADC conversion result (or a PELS ``capture``/``write`` sequence)
updates the duty cycle without waking the CPU, and the PWM's period event can
in turn trigger the next conversion.  The register interface follows the
shadow-register pattern used by real motor-control timers: software (or
PELS) writes ``DUTY_SHADOW`` and the value is taken over at the next period
boundary or instantly through the ``update`` event input.
"""

from __future__ import annotations

from repro.peripherals.base import Peripheral
from repro.peripherals.events import EventFabric

CTRL_ENABLE = 0x1
CTRL_UPDATE_ON_PERIOD = 0x2
STATUS_PERIOD = 0x1


class Pwm(Peripheral):
    """Single-channel up-counting PWM with shadowed duty updates.

    Register map (byte offsets):

    ========  =============  =================================================
    offset    name           function
    ========  =============  =================================================
    0x00      CTRL           bit0 enable, bit1 take over DUTY_SHADOW at period
    0x04      PERIOD         counter period in cycles (>= 1)
    0x08      DUTY           active duty threshold (read only; output high while COUNT < DUTY)
    0x0C      DUTY_SHADOW    next duty value, latched at period or on ``update``
    0x10      COUNT          current counter value (read only)
    0x14      STATUS         bit0 period-elapsed flag (W1C)
    ========  =============  =================================================
    """

    #: Horizon depends only on this peripheral's registers; every mutation
    #: path notifies wake_changed, so the scheduler may cache the deadline.
    wake_cacheable = True

    def __init__(self, name: str = "pwm", period: int = 100, duty: int = 0) -> None:
        super().__init__(name)
        if period < 1:
            raise ValueError("PWM period must be >= 1")
        if not 0 <= duty <= period:
            raise ValueError("PWM duty must be within [0, period]")
        self.regs.define("CTRL", 0x00)
        self.regs.define("PERIOD", 0x04, reset=period)
        self.regs.define("DUTY", 0x08, writable_mask=0)
        self.regs.define("DUTY_SHADOW", 0x0C, reset=duty)
        self.regs.define("COUNT", 0x10, writable_mask=0)
        self.regs.define("STATUS", 0x14, write_one_to_clear=True)
        self.regs.reg("DUTY").hw_write(duty)
        self.periods_elapsed = 0
        self.duty_updates = 0
        self.output_high_cycles = 0

    # ----------------------------------------------------------------- events

    def declare_events(self, fabric: EventFabric) -> None:
        self.add_output_event("period")

    def on_event_input(self, local_name: str) -> None:
        """Event inputs: ``update`` latches the shadow duty, ``start``/``stop`` gate the counter."""
        super().on_event_input(local_name)
        ctrl = self.regs.reg("CTRL")
        if local_name == "update":
            self._latch_duty()
        elif local_name == "start":
            ctrl.set_bits(CTRL_ENABLE)
        elif local_name == "stop":
            ctrl.clear_bits(CTRL_ENABLE)

    # --------------------------------------------------------------- behaviour

    def tick(self, cycle: int) -> None:
        if not self.regs.reg("CTRL").value & CTRL_ENABLE:
            return
        self.record("active_cycles")
        count_reg = self.regs.reg("COUNT")
        period = max(self.regs.reg("PERIOD").value, 1)
        if count_reg.value < self.regs.reg("DUTY").value:
            self.output_high_cycles += 1
        new_count = count_reg.value + 1
        if new_count < period:
            count_reg.hw_write(new_count)
            return
        count_reg.hw_write(0)
        self.periods_elapsed += 1
        self.regs.reg("STATUS").set_bits(STATUS_PERIOD)
        if self.regs.reg("CTRL").value & CTRL_UPDATE_ON_PERIOD:
            self._latch_duty()
        if self._fabric is not None:
            self.emit_event("period")

    def _latch_duty(self) -> None:
        shadow = self.regs.reg("DUTY_SHADOW").value
        period = max(self.regs.reg("PERIOD").value, 1)
        self.regs.reg("DUTY").hw_write(min(shadow, period))
        self.duty_updates += 1

    # ------------------------------------------------------------ wake protocol

    def next_event(self):
        if not self.enabled:
            return None
        if not self.event_observed("period"):
            # Consumer-aware fabric: the only wake this counter schedules is
            # the ``period`` pulse, and nothing consumes it — the counter can
            # free-run through any number of periods, with :meth:`skip`
            # replaying wraps, latches, and pulse statistics exactly.
            return None
        period = max(self.regs.reg("PERIOD").value, 1)
        # The period event fires in the tick entered with COUNT == PERIOD - 1
        # (or immediately if PERIOD was lowered below the running counter).
        return max(period - self.regs.reg("COUNT").value, 1)

    def skip(self, cycles: int) -> None:
        if not self.enabled or cycles <= 0:
            return
        self.record("active_cycles", cycles)
        count_reg = self.regs.reg("COUNT")
        count = count_reg.value
        duty = self.regs.reg("DUTY").value
        period = max(self.regs.reg("PERIOD").value, 1)
        # A counter already at/above PERIOD (the register was lowered inside
        # the span's setup tick) wraps on its very first tick, like tick().
        to_wrap = max(period - count, 1)
        if cycles < to_wrap:
            # Stays inside the current period: pure counter advance.
            if count < duty:
                self.output_high_cycles += min(duty, count + cycles) - count
            count_reg.hw_write(count + cycles)
            return
        # One or more period boundaries fall inside the span (only possible
        # while the ``period`` line is unobserved — otherwise the scheduler
        # bounds spans to stop short of the wrap tick).  Replay exactly what
        # dense ticking would have done, one period at a time in O(1):
        # segment up to the first wrap, then whole periods, then a remainder.
        update_on_period = bool(self.regs.reg("CTRL").value & CTRL_UPDATE_ON_PERIOD)
        if count < duty:
            # Dense checks COUNT < DUTY on each of the to_wrap ticks before
            # the first wrap; the min covers a COUNT already at/above PERIOD
            # (to_wrap clamped to 1), where the single wrap tick still counts
            # as high when DUTY exceeds the stale COUNT.
            self.output_high_cycles += min(duty - count, to_wrap)
        wraps = 1 + (cycles - to_wrap) // period
        remainder = (cycles - to_wrap) % period
        if update_on_period:
            # The shadow value is constant inside a quiescent span, so every
            # latch after the first writes the same duty.
            self._latch_duty()
            self.duty_updates += wraps - 1
        duty = self.regs.reg("DUTY").value
        self.output_high_cycles += (wraps - 1) * min(duty, period) + min(duty, remainder)
        self.periods_elapsed += wraps
        self.regs.reg("STATUS").set_bits(STATUS_PERIOD)
        self.account_skipped_events("period", wraps)
        count_reg.hw_write(remainder)

    # ----------------------------------------------------------------- queries

    @property
    def enabled(self) -> bool:
        """Whether the counter is running."""
        return bool(self.regs.reg("CTRL").value & CTRL_ENABLE)

    @property
    def output(self) -> bool:
        """Current PWM output level (high while COUNT < DUTY)."""
        return self.enabled and self.regs.reg("COUNT").value < self.regs.reg("DUTY").value

    @property
    def duty_fraction(self) -> float:
        """Active duty cycle as a fraction of the period."""
        period = max(self.regs.reg("PERIOD").value, 1)
        return self.regs.reg("DUTY").value / period

    def start(self) -> None:
        """Software helper: enable the counter."""
        self.regs.reg("CTRL").set_bits(CTRL_ENABLE)

    def stop(self) -> None:
        """Software helper: disable the counter."""
        self.regs.reg("CTRL").clear_bits(CTRL_ENABLE)

    def reset(self) -> None:
        super().reset()
        self.regs.reg("DUTY").hw_write(self.regs.reg("DUTY_SHADOW").reset)
        self.periods_elapsed = 0
        self.duty_updates = 0
        self.output_high_cycles = 0
