"""Single-wire event lines and the event fabric.

The event fabric is the glue between peripherals and PELS:

* peripherals *pulse* output event lines (timer overflow, SPI end-of-transfer);
* PELS broadcasts all input events to every link's trigger unit;
* PELS instant actions *drive* event lines back towards peripherals, and a
  subset of those outputs can be looped back into the fabric, which is how
  links trigger each other (marker 9 in Figure 2 of the paper).

**Consumer awareness.**  The fabric tracks which lines have a registered
*observer* — a PELS link trigger mask, an enabled interrupt route, an event-
interconnect channel, or a blanket subscription.  Producers consult
:meth:`EventFabric.is_observed` from their wake hints: a pulse on a line
nothing observes cannot change any other component's behaviour, so the
producer may report an unbounded wake horizon and let the event-driven
scheduler skip whole multiples of its period, batch-accounting the pulse
statistics through :meth:`EventFabric.account_unobserved_pulses`.  Observer
changes are pushed to the registered producer components via
:meth:`~repro.sim.component.Component.wake_changed`, so attaching a consumer
mid-run re-bounds the producer's horizon on the exact cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Protocol, Tuple


class _WakeProducer(Protocol):
    """What the fabric needs from a producer: a wake invalidation hook."""

    def wake_changed(self) -> None:  # pragma: no cover - protocol stub
        ...


@dataclass
class EventLine:
    """A named single-wire event with a fixed index in the fabric."""

    index: int
    name: str
    producer: str = "unknown"
    level: bool = field(default=False, init=False)
    pulse_count: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError("event line index must be non-negative")
        if not self.name:
            raise ValueError("event line name must be non-empty")


class EventFabric:
    """Registry and current-cycle state of all event lines in the I/O domain.

    Events are *pulses*: a producer asserts a line during one cycle and the
    fabric clears all pulses at the end of the cycle (:meth:`end_cycle`),
    after consumers (the PELS trigger units, peripherals with event inputs)
    have sampled them.  Level-type observers can subscribe with
    :meth:`subscribe` to be notified synchronously on every pulse.
    """

    def __init__(self, capacity: int = 64) -> None:
        if capacity <= 0:
            raise ValueError("event fabric capacity must be positive")
        self.capacity = capacity
        self._lines: List[EventLine] = []
        self._by_name: Dict[str, EventLine] = {}
        self._pending: set[int] = set()
        self._subscribers: List[Callable[[EventLine], None]] = []
        self.total_pulses = 0
        # Consumer-awareness bookkeeping: per-line observer counts (keyed by
        # name so not-yet-registered lines can be observed), a count of
        # blanket observers (subscriptions watching *every* line), and the
        # producer components to notify when observation changes.
        self._observer_counts: Dict[str, int] = {}
        self._global_observers = 0
        self._producers: Dict[str, _WakeProducer] = {}

    # --------------------------------------------------------------- registry

    def add_line(self, name: str, producer: str = "unknown") -> EventLine:
        """Register a new event line and return it."""
        if name in self._by_name:
            raise ValueError(f"event line {name!r} already exists")
        if len(self._lines) >= self.capacity:
            raise ValueError(f"event fabric is full ({self.capacity} lines)")
        line = EventLine(index=len(self._lines), name=name, producer=producer)
        self._lines.append(line)
        self._by_name[name] = line
        return line

    def line(self, name_or_index: str | int) -> EventLine:
        """Look up a line by name or index."""
        if isinstance(name_or_index, int):
            if not 0 <= name_or_index < len(self._lines):
                raise KeyError(f"no event line with index {name_or_index}")
            return self._lines[name_or_index]
        try:
            return self._by_name[name_or_index]
        except KeyError as exc:
            raise KeyError(f"no event line named {name_or_index!r}") from exc

    def index_of(self, name: str) -> int:
        """Index of the line called ``name``."""
        return self.line(name).index

    @property
    def lines(self) -> Tuple[EventLine, ...]:
        """All registered lines in index order."""
        return tuple(self._lines)

    def __len__(self) -> int:
        return len(self._lines)

    # --------------------------------------------------------------- behaviour

    def pulse(self, name_or_index: str | int) -> None:
        """Assert a line for the current cycle."""
        line = self.line(name_or_index)
        line.level = True
        line.pulse_count += 1
        self.total_pulses += 1
        self._pending.add(line.index)
        for subscriber in self._subscribers:
            subscriber(line)

    def is_active(self, name_or_index: str | int) -> bool:
        """Whether the line is asserted in the current cycle."""
        return self.line(name_or_index).level

    def active_mask(self) -> int:
        """Bitmask of all lines asserted in the current cycle."""
        mask = 0
        for index in self._pending:
            mask |= 1 << index
        return mask

    def active_lines(self) -> Tuple[EventLine, ...]:
        """All currently asserted lines."""
        return tuple(self._lines[index] for index in sorted(self._pending))

    def end_cycle(self) -> None:
        """Clear all pulses; call once per simulated cycle after consumers ran."""
        for index in self._pending:
            self._lines[index].level = False
        self._pending.clear()

    def subscribe(
        self, callback: Callable[[EventLine], None], observe_all: bool = True
    ) -> None:
        """Register a callback invoked synchronously on every pulse.

        By default a subscription counts as an observer of *every* line
        (conservative: producers stop skipping their pulses).  A consumer
        that only acts on an explicit subset — like the interrupt controller,
        which checks its enabled-line table — passes ``observe_all=False``
        and registers its interest per line with :meth:`observe`.
        """
        self._subscribers.append(callback)
        if observe_all:
            self._global_observers += 1
            if self._global_observers == 1:
                for producer in self._producers.values():
                    producer.wake_changed()

    # ------------------------------------------------------- consumer awareness

    def register_producer(self, name_or_index: str | int, producer: _WakeProducer) -> None:
        """Bind the component that drives a line, for observation-change pushes."""
        self._producers[self.line(name_or_index).name] = producer

    def _line_name(self, name_or_index: str | int) -> str:
        if isinstance(name_or_index, int):
            return self.line(name_or_index).name
        return name_or_index

    def observe(self, name_or_index: str | int) -> None:
        """Declare a consumer of a line (idempotence is the caller's job).

        Accepts names of lines that are not registered yet, so consumers can
        be configured before the producer declares its events.
        """
        name = self._line_name(name_or_index)
        count = self._observer_counts.get(name, 0) + 1
        self._observer_counts[name] = count
        if count == 1:
            producer = self._producers.get(name)
            if producer is not None:
                producer.wake_changed()

    def unobserve(self, name_or_index: str | int) -> None:
        """Retract one :meth:`observe` declaration for a line."""
        name = self._line_name(name_or_index)
        count = self._observer_counts.get(name, 0)
        if count <= 0:
            raise ValueError(f"event line {name!r} has no observers to remove")
        self._observer_counts[name] = count - 1
        if count == 1:
            producer = self._producers.get(name)
            if producer is not None:
                producer.wake_changed()

    def is_observed(self, name_or_index: str | int) -> bool:
        """Whether any consumer would notice a pulse on this line."""
        if self._global_observers > 0:
            return True
        return self._observer_counts.get(self._line_name(name_or_index), 0) > 0

    def account_unobserved_pulses(self, name_or_index: str | int, count: int) -> None:
        """Batch-record ``count`` pulses skipped on an unobserved line.

        Used by producers replaying a skipped span: the pulse statistics stay
        cycle-exact with dense stepping, but no subscriber runs and no level
        is latched — which is exactly what an unobserved pulse amounts to
        (dense pulses are cleared at the end of their own cycle).
        """
        if count < 0:
            raise ValueError("pulse count must be non-negative")
        line = self.line(name_or_index)
        if self.is_observed(line.name):
            raise RuntimeError(
                f"event line {line.name!r} has observers; its pulses cannot be skipped"
            )
        line.pulse_count += count
        self.total_pulses += count

    def reset(self) -> None:
        """Clear pulse state and statistics (registered lines and observers
        are configuration, not state, and are kept)."""
        for line in self._lines:
            line.level = False
            line.pulse_count = 0
        self._pending.clear()
        self.total_pulses = 0


def mask_for(fabric: EventFabric, names: Tuple[str, ...] | List[str]) -> int:
    """Build an event bitmask from line names (helper for trigger configuration)."""
    mask = 0
    for name in names:
        mask |= 1 << fabric.index_of(name)
    return mask
