"""I2C controller model.

A minimal-but-faithful master: software (or PELS) programs a target register
address and a transaction length, starts the transfer, and the controller
clocks the transaction against a small behavioural target device, pulsing a
``done`` event at the end.  It is used by the multi-peripheral examples to
show PELS sequencing commands across more than one bus client.
"""

from __future__ import annotations

from typing import Dict

from repro.peripherals.base import Peripheral
from repro.peripherals.events import EventFabric

CTRL_START = 0x1
CTRL_READ = 0x2
STATUS_BUSY = 0x1
STATUS_DONE = 0x2
DEFAULT_CYCLES_PER_BYTE = 9  # 8 data bits + ACK


class I2cController(Peripheral):
    """I2C master with a built-in behavioural target device.

    Register map (byte offsets):

    ========  ============  ==================================================
    offset    name          function
    ========  ============  ==================================================
    0x00      CTRL          bit0 start (self-clearing), bit1 read (else write)
    0x04      TARGET_ADDR   7-bit device address and 8-bit register index
    0x08      DATA          write payload / read result
    0x0C      STATUS        bit0 busy, bit1 done (W1C)
    0x10      CLK_CYCLES    cycles per transferred byte
    ========  ============  ==================================================
    """

    #: Transaction starts (register or event input) always touch STATUS, so
    #: the register-file notify covers every horizon change.
    wake_cacheable = True

    def __init__(self, name: str = "i2c", cycles_per_byte: int = DEFAULT_CYCLES_PER_BYTE) -> None:
        super().__init__(name)
        if cycles_per_byte < 1:
            raise ValueError("cycles_per_byte must be >= 1")
        self.regs.define("CTRL", 0x00, on_write=self._on_ctrl_write)
        self.regs.define("TARGET_ADDR", 0x04)
        self.regs.define("DATA", 0x08)
        self.regs.define("STATUS", 0x0C, write_one_to_clear=True)
        self.regs.define("CLK_CYCLES", 0x10, reset=cycles_per_byte)
        self.target_memory: Dict[int, int] = {}
        self._remaining = 0
        self._pending_read = False
        self.transactions = 0

    def declare_events(self, fabric: EventFabric) -> None:
        self.add_output_event("done")

    def on_event_input(self, local_name: str) -> None:
        """``start`` input begins a transaction with the current settings."""
        super().on_event_input(local_name)
        if local_name == "start":
            self._start()

    def _on_ctrl_write(self, value: int) -> None:
        if value & CTRL_START:
            self.regs.reg("CTRL").clear_bits(CTRL_START)
            self._start()

    def _start(self) -> None:
        if self.busy:
            self.record("start_while_busy")
            return
        # Address byte + register byte + one data byte.
        self._remaining = 3 * max(self.regs.reg("CLK_CYCLES").value, 1)
        self._pending_read = bool(self.regs.reg("CTRL").value & CTRL_READ)
        self.regs.reg("STATUS").set_bits(STATUS_BUSY)
        self.record("transactions_started")

    def tick(self, cycle: int) -> None:
        if self._remaining <= 0:
            return
        self.record("bus_cycles")
        self._remaining -= 1
        if self._remaining > 0:
            return
        target = self.regs.reg("TARGET_ADDR").value & 0xFFFF
        if self._pending_read:
            self.regs.reg("DATA").hw_write(self.target_memory.get(target, 0))
        else:
            self.target_memory[target] = self.regs.reg("DATA").value & 0xFF
        status = self.regs.reg("STATUS")
        status.clear_bits(STATUS_BUSY)
        status.set_bits(STATUS_DONE)
        self.transactions += 1
        if self._fabric is not None:
            self.emit_event("done")

    # ------------------------------------------------------------ wake protocol

    def next_event(self):
        if self._remaining <= 0:
            return None
        return self._remaining

    def skip(self, cycles: int) -> None:
        if self._remaining <= 0:
            return
        self.record("bus_cycles", cycles)
        self._remaining -= cycles

    @property
    def busy(self) -> bool:
        """Whether a transaction is in progress."""
        return self._remaining > 0

    def preload_target(self, register: int, value: int) -> None:
        """Testbench helper: preload the behavioural target device's memory."""
        self.target_memory[register & 0xFFFF] = value & 0xFF

    def reset(self) -> None:
        super().reset()
        self.target_memory.clear()
        self._remaining = 0
        self._pending_read = False
        self.transactions = 0
