"""Peripheral models for the PULPissimo-style I/O domain.

Each peripheral is a memory-mapped bus slave (so PELS sequenced actions and
the CPU can reach it through the APB fabric) and, where it makes sense, also
exposes *event lines*: single-wire outputs it raises when something happens
(timer overflow, SPI end-of-transfer, ADC threshold, ...) and single-wire
inputs it reacts to instantly (GPIO toggle, ADC start-of-conversion, ...).
The event-line fabric is what PELS instant actions drive.
"""

from repro.peripherals.events import EventFabric, EventLine
from repro.peripherals.regfile import Register, RegisterFile, RegisterError
from repro.peripherals.base import Peripheral
from repro.peripherals.gpio import Gpio
from repro.peripherals.timer import Timer
from repro.peripherals.adc import Adc
from repro.peripherals.spi import SpiController
from repro.peripherals.uart import Uart
from repro.peripherals.i2c import I2cController
from repro.peripherals.pwm import Pwm
from repro.peripherals.watchdog import Watchdog
from repro.peripherals.sensor import SyntheticSensor, SensorWaveform

__all__ = [
    "Adc",
    "EventFabric",
    "EventLine",
    "Gpio",
    "I2cController",
    "Peripheral",
    "Pwm",
    "Register",
    "RegisterError",
    "RegisterFile",
    "SensorWaveform",
    "SpiController",
    "SyntheticSensor",
    "Timer",
    "Uart",
    "Watchdog",
]
