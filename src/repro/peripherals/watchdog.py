"""Watchdog timer.

Section III-2 of the paper notes that PELS's ``loop`` and ``wait`` commands
"subsume watchdog-like functions without requiring an external timer"; this
block is the *conventional* external watchdog those functions replace, kept
in the model so the examples and ablations can compare the two approaches
and so PELS has a realistic peripheral to kick autonomously (e.g. an SPI
end-of-transfer event proving the sensor path is alive).

Behaviour: a down-counter that, when it reaches zero, first pulses a ``bark``
event (early warning) and, after a further grace period, a ``bite`` event
(system reset request).  Kicking reloads the counter; the kick can come from
a register write or from the ``kick`` event input driven by PELS.
"""

from __future__ import annotations

from repro.peripherals.base import Peripheral
from repro.peripherals.events import EventFabric

CTRL_ENABLE = 0x1
STATUS_BARKED = 0x1
STATUS_BITTEN = 0x2


class Watchdog(Peripheral):
    """Bark/bite watchdog with an event-driven kick input.

    Register map (byte offsets):

    ========  ============  ==================================================
    offset    name          function
    ========  ============  ==================================================
    0x00      CTRL          bit0 enable
    0x04      TIMEOUT       cycles until the bark event (>= 1)
    0x08      GRACE         further cycles until the bite event (>= 1)
    0x0C      KICK          write any value to reload the counter
    0x10      COUNT         remaining cycles (read only)
    0x14      STATUS        bit0 barked (W1C), bit1 bitten (W1C)
    ========  ============  ==================================================
    """

    #: Horizon is the down-counter value; kicks and control writes all go
    #: through the register file, which notifies wake_changed.
    wake_cacheable = True

    def __init__(self, name: str = "wdt", timeout: int = 1000, grace: int = 100) -> None:
        super().__init__(name)
        if timeout < 1 or grace < 1:
            raise ValueError("watchdog timeout and grace period must be >= 1")
        self.regs.define("CTRL", 0x00, on_write=self._on_ctrl_write)
        self.regs.define("TIMEOUT", 0x04, reset=timeout)
        self.regs.define("GRACE", 0x08, reset=grace)
        self.regs.define("KICK", 0x0C, on_write=self._on_kick_write)
        self.regs.define("COUNT", 0x10, reset=timeout, writable_mask=0)
        self.regs.define("STATUS", 0x14, write_one_to_clear=True)
        self.kicks = 0
        self.barks = 0
        self.bites = 0
        self._in_grace = False

    def declare_events(self, fabric: EventFabric) -> None:
        self.add_output_event("bark")
        self.add_output_event("bite")

    def on_event_input(self, local_name: str) -> None:
        """``kick`` reloads the counter — the input PELS drives autonomously."""
        super().on_event_input(local_name)
        if local_name == "kick":
            self.kick()

    # --------------------------------------------------------- register hooks

    def _on_ctrl_write(self, value: int) -> None:
        if value & CTRL_ENABLE:
            self._reload()

    def _on_kick_write(self, value: int) -> None:
        self.kick()

    # --------------------------------------------------------------- behaviour

    def kick(self) -> None:
        """Reload the down-counter and leave the grace phase."""
        self.kicks += 1
        self._reload()

    def _reload(self) -> None:
        self.regs.reg("COUNT").hw_write(max(self.regs.reg("TIMEOUT").value, 1))
        self._in_grace = False

    def tick(self, cycle: int) -> None:
        if not self.regs.reg("CTRL").value & CTRL_ENABLE:
            return
        self.record("active_cycles")
        count_reg = self.regs.reg("COUNT")
        remaining = count_reg.value
        if remaining > 1:
            count_reg.hw_write(remaining - 1)
            return
        count_reg.hw_write(0)
        if not self._in_grace:
            self._in_grace = True
            count_reg.hw_write(max(self.regs.reg("GRACE").value, 1))
            self.barks += 1
            self.regs.reg("STATUS").set_bits(STATUS_BARKED)
            if self._fabric is not None:
                self.emit_event("bark")
        else:
            self.bites += 1
            self.regs.reg("STATUS").set_bits(STATUS_BITTEN)
            self.regs.reg("CTRL").clear_bits(CTRL_ENABLE)
            if self._fabric is not None:
                self.emit_event("bite")

    # ------------------------------------------------------------ wake protocol

    def next_event(self):
        if not self.enabled:
            return None
        # The tick entered with COUNT <= 1 barks (or bites); everything before
        # it only decrements the down-counter.
        return max(self.regs.reg("COUNT").value, 1)

    def skip(self, cycles: int) -> None:
        if not self.enabled:
            return
        self.record("active_cycles", cycles)
        count_reg = self.regs.reg("COUNT")
        count_reg.hw_write(count_reg.value - cycles)

    # ----------------------------------------------------------------- queries

    @property
    def enabled(self) -> bool:
        """Whether the watchdog is counting."""
        return bool(self.regs.reg("CTRL").value & CTRL_ENABLE)

    @property
    def barked(self) -> bool:
        """Whether the early-warning event has fired since the last clear."""
        return bool(self.regs.reg("STATUS").value & STATUS_BARKED)

    @property
    def bitten(self) -> bool:
        """Whether the watchdog has expired completely."""
        return bool(self.regs.reg("STATUS").value & STATUS_BITTEN)

    def start(self) -> None:
        """Software helper: arm the watchdog."""
        self.regs.reg("CTRL").write(CTRL_ENABLE)

    def reset(self) -> None:
        super().reset()
        self.kicks = 0
        self.barks = 0
        self.bites = 0
        self._in_grace = False
