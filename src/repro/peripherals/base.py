"""Common base class for memory-mapped peripherals with event lines."""

from __future__ import annotations

from typing import Dict, Optional

from repro.peripherals.events import EventFabric
from repro.peripherals.regfile import RegisterFile
from repro.sim.component import Component


class Peripheral(Component):
    """A bus-slave peripheral that may produce and consume event lines.

    Subclasses populate :attr:`regs` in their constructor, implement
    :meth:`tick` for cycle behaviour, and use :meth:`emit_event` to pulse
    their output event lines.  Input event lines (driven by PELS instant
    actions or by other peripherals) are received through
    :meth:`on_event_input`, which the SoC wiring calls when a subscribed line
    pulses.
    """

    def __init__(self, name: str, wait_states: int = 0) -> None:
        super().__init__(name)
        self.regs = RegisterFile(name)
        self.wait_states = wait_states
        self._fabric: Optional[EventFabric] = None
        self._output_events: Dict[str, str] = {}
        self._input_events: Dict[str, str] = {}
        # Wake-invalidation wiring: any register mutation may move this
        # peripheral's next wake, so the whole file notifies the scheduler.
        # Installed here (not at attach time) so pre-attach writes are also
        # covered once the component joins a simulator.
        self.regs.set_notify(self.wake_changed)

    # ------------------------------------------------------------ event wiring

    def connect_events(self, fabric: EventFabric) -> None:
        """Attach the peripheral to the SoC event fabric.

        Subclasses override :meth:`declare_events` to register their lines;
        this method must be called exactly once before simulation.
        """
        if self._fabric is not None:
            raise RuntimeError(f"{self.name}: event fabric already connected")
        self._fabric = fabric
        self.declare_events(fabric)

    def declare_events(self, fabric: EventFabric) -> None:
        """Register output/input event lines.  Default: no events."""

    def add_output_event(self, local_name: str) -> str:
        """Register an output event line named ``<peripheral>.<local_name>``."""
        if self._fabric is None:
            raise RuntimeError(f"{self.name}: connect_events() must be called first")
        full_name = f"{self.name}.{local_name}"
        self._fabric.add_line(full_name, producer=self.name)
        self._fabric.register_producer(full_name, self)
        self._output_events[local_name] = full_name
        return full_name

    def register_input_event(self, local_name: str, line_name: str) -> None:
        """Declare that the fabric line ``line_name`` feeds input ``local_name``."""
        self._input_events[local_name] = line_name

    def emit_event(self, local_name: str) -> None:
        """Pulse the output event line registered as ``local_name``."""
        if self._fabric is None:
            raise RuntimeError(f"{self.name}: connect_events() must be called first")
        full_name = self._output_events.get(local_name)
        if full_name is None:
            raise KeyError(f"{self.name}: unknown output event {local_name!r}")
        self._fabric.pulse(full_name)
        self.record(f"event_{local_name}")

    def event_line_name(self, local_name: str) -> str:
        """Fully qualified fabric name of output event ``local_name``."""
        full_name = self._output_events.get(local_name)
        if full_name is None:
            raise KeyError(f"{self.name}: unknown output event {local_name!r}")
        return full_name

    def event_observed(self, local_name: str) -> bool:
        """Whether anything would notice a pulse of output ``local_name``.

        Conservatively ``True`` when the peripheral is not connected to a
        fabric (a bench-level test polling registers *is* a consumer the
        fabric cannot see) or when the event was never declared.  Producers
        use this from :meth:`next_event` to report unbounded horizons for
        wakes whose only effect feeds an unobserved line.
        """
        if self._fabric is None:
            return True
        full_name = self._output_events.get(local_name)
        if full_name is None:
            return True
        return self._fabric.is_observed(full_name)

    def account_skipped_events(self, local_name: str, count: int) -> None:
        """Batch-replay ``count`` unobserved pulses of output ``local_name``.

        The cycle-exact counterpart of ``count`` :meth:`emit_event` calls for
        a span the scheduler skipped: pulse counters and activity match dense
        stepping, but no consumer runs (there are none — the fabric enforces
        it).  No-op when the peripheral has no fabric (dense ticks would not
        have emitted either).
        """
        if self._fabric is None or count <= 0:
            return
        full_name = self._output_events.get(local_name)
        if full_name is None:
            raise KeyError(f"{self.name}: unknown output event {local_name!r}")
        self._fabric.account_unobserved_pulses(full_name, count)
        self.record(f"event_{local_name}", count)

    @property
    def output_events(self) -> Dict[str, str]:
        """Mapping of local output event names to fabric line names."""
        return dict(self._output_events)

    def on_event_input(self, local_name: str) -> None:
        """React to an input event pulse.  Default: record and ignore."""
        self.record(f"event_in_{local_name}")

    # ------------------------------------------------------------ bus interface

    def bus_read(self, offset: int) -> int:
        """APB read: return the register value at ``offset``."""
        self.record("bus_reads")
        return self.regs.read(offset)

    def bus_write(self, offset: int, value: int) -> None:
        """APB write: update the register at ``offset``."""
        self.record("bus_writes")
        self.regs.write(offset, value)

    def register_offset(self, register_name: str) -> int:
        """Byte offset of one of this peripheral's registers (for assemblers)."""
        return self.regs.offset_of(register_name)

    # ----------------------------------------------------------------- control

    def reset(self) -> None:
        self.regs.reset()
