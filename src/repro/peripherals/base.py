"""Common base class for memory-mapped peripherals with event lines."""

from __future__ import annotations

from typing import Dict, Optional

from repro.peripherals.events import EventFabric
from repro.peripherals.regfile import RegisterFile
from repro.sim.component import Component


class Peripheral(Component):
    """A bus-slave peripheral that may produce and consume event lines.

    Subclasses populate :attr:`regs` in their constructor, implement
    :meth:`tick` for cycle behaviour, and use :meth:`emit_event` to pulse
    their output event lines.  Input event lines (driven by PELS instant
    actions or by other peripherals) are received through
    :meth:`on_event_input`, which the SoC wiring calls when a subscribed line
    pulses.
    """

    def __init__(self, name: str, wait_states: int = 0) -> None:
        super().__init__(name)
        self.regs = RegisterFile(name)
        self.wait_states = wait_states
        self._fabric: Optional[EventFabric] = None
        self._output_events: Dict[str, str] = {}
        self._input_events: Dict[str, str] = {}

    # ------------------------------------------------------------ event wiring

    def connect_events(self, fabric: EventFabric) -> None:
        """Attach the peripheral to the SoC event fabric.

        Subclasses override :meth:`declare_events` to register their lines;
        this method must be called exactly once before simulation.
        """
        if self._fabric is not None:
            raise RuntimeError(f"{self.name}: event fabric already connected")
        self._fabric = fabric
        self.declare_events(fabric)

    def declare_events(self, fabric: EventFabric) -> None:
        """Register output/input event lines.  Default: no events."""

    def add_output_event(self, local_name: str) -> str:
        """Register an output event line named ``<peripheral>.<local_name>``."""
        if self._fabric is None:
            raise RuntimeError(f"{self.name}: connect_events() must be called first")
        full_name = f"{self.name}.{local_name}"
        self._fabric.add_line(full_name, producer=self.name)
        self._output_events[local_name] = full_name
        return full_name

    def register_input_event(self, local_name: str, line_name: str) -> None:
        """Declare that the fabric line ``line_name`` feeds input ``local_name``."""
        self._input_events[local_name] = line_name

    def emit_event(self, local_name: str) -> None:
        """Pulse the output event line registered as ``local_name``."""
        if self._fabric is None:
            raise RuntimeError(f"{self.name}: connect_events() must be called first")
        full_name = self._output_events.get(local_name)
        if full_name is None:
            raise KeyError(f"{self.name}: unknown output event {local_name!r}")
        self._fabric.pulse(full_name)
        self.record(f"event_{local_name}")

    def event_line_name(self, local_name: str) -> str:
        """Fully qualified fabric name of output event ``local_name``."""
        full_name = self._output_events.get(local_name)
        if full_name is None:
            raise KeyError(f"{self.name}: unknown output event {local_name!r}")
        return full_name

    @property
    def output_events(self) -> Dict[str, str]:
        """Mapping of local output event names to fabric line names."""
        return dict(self._output_events)

    def on_event_input(self, local_name: str) -> None:
        """React to an input event pulse.  Default: record and ignore."""
        self.record(f"event_in_{local_name}")

    # ------------------------------------------------------------ bus interface

    def bus_read(self, offset: int) -> int:
        """APB read: return the register value at ``offset``."""
        self.record("bus_reads")
        return self.regs.read(offset)

    def bus_write(self, offset: int, value: int) -> None:
        """APB write: update the register at ``offset``."""
        self.record("bus_writes")
        self.regs.write(offset, value)

    def register_offset(self, register_name: str) -> int:
        """Byte offset of one of this peripheral's registers (for assemblers)."""
        return self.regs.offset_of(register_name)

    # ----------------------------------------------------------------- control

    def reset(self) -> None:
        self.regs.reset()
