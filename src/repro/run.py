"""Batch scenario runner: ``python -m repro.run <scenario> --horizon-ms N``.

Runs any scenario from :mod:`repro.workloads.registry` over a configurable
simulated horizon and prints its statistics together with wall-clock timing.
``--compare`` runs the same scenario under both kernels (legacy dense and
event-driven) and reports the speedup, which is also how the quiescence
skipping is validated end to end from the command line.

The ``sweep`` subcommand executes a whole campaign of scenario points
(:mod:`repro.sweep`), sharded across a process pool, and writes JSON + CSV
artifacts plus a reproducibility manifest under ``results/sweeps/``.
Batched execution (``--batch``, on by default where the scenario supports
it) lets points that differ only in their horizon share one simulation,
advanced in lockstep with the chunk's other instances — byte-identical
artifacts, measured ≥1.5x faster on multi-horizon campaigns (≥3x with the
vectorised ``--backend numpy`` round loop, the default when numpy is
importable).
``--shard I/N`` restricts a run to one slice of the grid for multi-host
distribution, ``sweep merge`` stitches the per-host artifact directories
back into the single-host artifacts, and ``sweep merge --heal`` emits the
exact re-run commands (plus ``heal.json``) when the fleet left gaps.

The ``fleet`` subcommand (:mod:`repro.fleet`) drives all of that
autonomously: it cuts the campaign into cost-weighted shards, runs them as
supervised ``sweep --shard`` workers with timeouts and kill discipline,
heals gaps by consuming ``heal.json`` with exponential backoff, merges the
result, and records everything in a ``fleet.json`` ledger (rendered by
``fleet status``).  Exit 0 = complete, 4 = retry budget exhausted with
partial artifacts preserved.  See ``docs/fleet.md``.

Examples::

    python -m repro.run --list
    python -m repro.run duty-cycled-logging --horizon-ms 20
    python -m repro.run always-on-monitor --horizon-cycles 500000 --compare
    python -m repro.run burst-spi-dma --dense
    python -m repro.run sweep --list
    python -m repro.run sweep pipeline-clock-ratio --jobs 4
    python -m repro.run sweep watchdog-fault-injection --dry-run
    python -m repro.run sweep smoke --shard 0/3 --out /tmp/shards
    python -m repro.run sweep merge /tmp/shards/smoke/shard-0-of-3 \\
        /tmp/shards/smoke/shard-1-of-3 /tmp/shards/smoke/shard-2-of-3
    python -m repro.run sweep smoke --trace-out trace.json --profile
    python -m repro.run fleet fleet-scale --workers 4 --timeout 120
    python -m repro.run fleet status results/sweeps/fleet-scale
    python -m repro.run stats results/sweeps/smoke
    python -m repro.run store ingest results/sweeps/smoke
    python -m repro.run store query --campaign smoke --aggregate mean:power_uw.Total
    python -m repro.run store info
    python -m repro.run sweep smoke --resume-from-store results/store.sqlite

Telemetry (``--trace-out``, ``--profile``, the ``stats`` subcommand) is the
:mod:`repro.obs` layer — see ``docs/observability.md``.  It is purely
observational: results.json/results.csv are byte-identical with it on or
off, and with it off the instrumentation costs one pointer check per span.

The ``store`` subcommand (:mod:`repro.store`) maintains the persistent,
queryable corpus of every campaign ever ingested: ``store ingest`` folds
artifact directories into an sqlite database with dedup on re-ingest,
``store query`` filters/aggregates across campaigns, ``store info``
summarises coverage, and ``sweep --resume-from-store`` resumes a campaign
from the store instead of a directory hunt.  See ``docs/store.md``; the
full subcommand/exit-code reference is ``docs/cli.md``.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Dict, Optional, Sequence

from repro.workloads.registry import run_scenario, scenario, scenarios

DEFAULT_FREQUENCY_MHZ = 55.0
DEFAULT_SWEEP_OUT = "results/sweeps"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.run",
        description="Run a registered PELS workload scenario.",
    )
    parser.add_argument("scenario", nargs="?", help="scenario name (see --list)")
    parser.add_argument("--list", action="store_true", help="list registered scenarios and exit")
    horizon = parser.add_mutually_exclusive_group()
    horizon.add_argument(
        "--horizon-ms", type=float, default=None, help="simulated horizon in milliseconds"
    )
    horizon.add_argument(
        "--horizon-cycles", type=int, default=None, help="simulated horizon in clock cycles"
    )
    parser.add_argument(
        "--frequency-mhz",
        type=float,
        default=DEFAULT_FREQUENCY_MHZ,
        help="clock frequency used to convert --horizon-ms (default: %(default)s)",
    )
    parser.add_argument(
        "--dense",
        action="store_true",
        help="use the legacy cycle-driven kernel instead of event-driven scheduling",
    )
    parser.add_argument(
        "--compare",
        action="store_true",
        help="run under both kernels and report the event-driven speedup",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE",
        help="export a Chrome trace-event JSON of the run (open in Perfetto "
        "or chrome://tracing); see docs/observability.md",
    )
    return parser


def _horizon_cycles(args: argparse.Namespace) -> Optional[int]:
    if args.horizon_cycles is not None:
        if args.horizon_cycles < 1:
            raise SystemExit("--horizon-cycles must be at least 1")
        return args.horizon_cycles
    if args.horizon_ms is not None:
        if args.horizon_ms <= 0:
            raise SystemExit("--horizon-ms must be positive")
        return max(int(round(args.horizon_ms * 1e-3 * args.frequency_mhz * 1e6)), 1)
    return None


def _print_stats(stats: Dict[str, object]) -> None:
    width = max(len(key) for key in stats)
    for key, value in stats.items():
        if isinstance(value, float):
            print(f"  {key:<{width}} : {value:.2f}")
        else:
            print(f"  {key:<{width}} : {value}")


def _timed_run(name: str, horizon: Optional[int], dense: bool) -> tuple:
    start = time.perf_counter()
    stats = run_scenario(name, horizon_cycles=horizon, dense=dense)
    return time.perf_counter() - start, stats


# ------------------------------------------------------------------- sweeps


def _build_sweep_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.run sweep",
        description="Execute a sweep campaign, sharded across processes.",
    )
    parser.add_argument("campaign", nargs="?", help="campaign name (see --list)")
    parser.add_argument("--list", action="store_true", help="list registered campaigns and exit")
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes; 1 runs serially with identical results (default: %(default)s)",
    )
    parser.add_argument(
        "--chunk",
        type=int,
        default=None,
        help="points dispatched per worker task; default auto-sizes to about "
        "four chunks per worker so small campaigns amortise pool overhead",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="reuse points already present in <out>/<campaign>/results.json "
        "when its manifest hash matches the campaign definition",
    )
    parser.add_argument(
        "--resume-from-store",
        default=None,
        metavar="DB",
        help="reuse points from a results-store database (see 'store ingest') "
        "instead of hunting artifact directories; validated against the same "
        "campaign identity as --resume and byte-identical to it; combinable "
        "with --resume (directory artifacts win ties)",
    )
    parser.add_argument(
        "--batch",
        choices=("auto", "on", "off"),
        default="auto",
        help="batched multi-instance execution: points differing only in "
        "horizon_cycles share one simulation, advanced in lockstep with the "
        "chunk's other instances under one schedule plan; results are "
        "byte-identical to per-point execution (default: %(default)s — on "
        "whenever the scenario supports it)",
    )
    parser.add_argument(
        "--backend",
        choices=("auto", "python", "numpy"),
        default="auto",
        help="batch kernel loop: 'python' is the reference per-instance "
        "round loop, 'numpy' vectorises span selection across the batch "
        "(identical results), 'auto' picks numpy when importable "
        "(default: %(default)s); recorded in the manifest execution block",
    )
    parser.add_argument(
        "--plan-cache",
        default=None,
        metavar="DIR",
        help="persistent prepared-state snapshot cache: batched groups "
        "warm-start from snapshots published by earlier runs (any process, "
        "any backend) and publish their own at every horizon stop; results "
        "are byte-identical to a cold run, hit/miss totals land in the "
        "manifest's execution.cache block; the fleet provisions one shared "
        "cache dir automatically",
    )
    parser.add_argument(
        "--shard",
        default=None,
        metavar="I/N",
        help="execute only shard I of N (contiguous index ranges of the "
        "expanded grid, zero-based) for multi-host distribution; merge the "
        "per-host artifacts with 'sweep merge'",
    )
    parser.add_argument(
        "--out",
        default=DEFAULT_SWEEP_OUT,
        help="artifact root; files land in <out>/<campaign>/ (default: %(default)s)",
    )
    parser.add_argument(
        "--dry-run",
        action="store_true",
        help="expand and print the run matrix without executing anything",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE",
        help="export a Chrome trace-event JSON of the whole campaign "
        "(kernel spans, batch rounds, per-point lanes; open in Perfetto). "
        "A bare filename lands next to the campaign's artifacts; results "
        "stay byte-identical to an untraced run",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="record the per-phase wall-time breakdown (expand/prepare/"
        "simulate/finalize/write) into the manifest's execution.telemetry "
        "block and print it after the run; 'repro.run stats <dir>' renders "
        "it again later",
    )
    return parser


def _sweep_progress(completed: int, total: int, result) -> None:
    params = " ".join(f"{key}={value}" for key, value in sorted(result.params.items()))
    timing = "reused" if result.reused else f"{result.wall_seconds * 1e3:.0f} ms"
    print(
        f"[{completed}/{total}] point {result.index:>3} "
        f"{result.scenario} horizon={result.horizon_cycles} {params} "
        f"({timing})",
        file=sys.stderr,
        flush=True,
    )


def _build_merge_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.run sweep merge",
        description="Merge sharded campaign artifacts back into single-host artifacts.",
    )
    parser.add_argument(
        "shard_dirs",
        nargs="+",
        metavar="SHARD_DIR",
        help="one shard's campaign directory (directly containing results.json "
        "and manifest.json); pass every shard of the campaign",
    )
    parser.add_argument(
        "--out",
        default=DEFAULT_SWEEP_OUT,
        help="artifact root; merged files land in <out>/<campaign>/ (default: %(default)s)",
    )
    parser.add_argument(
        "--heal",
        action="store_true",
        help="when the shard set has coverage gaps, emit the exact re-run "
        "commands (and write <out>/<campaign>/heal.json) that fill them, "
        "then exit 3 instead of 2",
    )
    return parser


def _merge_main(argv: Sequence[str]) -> int:
    from repro.sweep import (
        IncompleteCoverageError,
        MergeError,
        merge_shards,
        plan_heal,
        write_heal_plan,
        write_merged_artifacts,
    )

    args = _build_merge_parser().parse_args(argv)
    try:
        merged = merge_shards([Path(directory) for directory in args.shard_dirs])
    except IncompleteCoverageError as exc:
        print(f"error: {exc}", file=sys.stderr)
        if not args.heal:
            return 2
        plan = plan_heal(exc, Path(args.out))
        path = write_heal_plan(plan, Path(args.out))
        print(
            f"heal: {len(plan['commands'])} re-run(s) close the "
            f"{len(plan['missing'])}-point gap:",
            file=sys.stderr,
        )
        for command in plan["commands"]:
            print(command["command"])
        print(f"heal plan written to {path}", file=sys.stderr)
        merge_after = " ".join(str(directory) for directory in plan["merge_after"])
        print(
            f"then: python -m repro.run sweep merge {merge_after} --out {args.out}",
            file=sys.stderr,
        )
        return 3
    except MergeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    paths = write_merged_artifacts(merged, Path(args.out))
    result = merged.result
    print(
        f"merged campaign {result.campaign}: {result.n_points} points over scenario "
        f"{result.scenario} from {len(merged.sources)} artifact dir(s)"
    )
    for source in merged.sources:
        print(f"  <- {source.shard_label}")
    for label in ("results_json", "results_csv", "manifest_json"):
        print(f"  {paths[label]}")
    if "trace_json" in paths:
        print(f"  {paths['trace_json']}")
    return 0


# -------------------------------------------------------------------- stats


def _build_stats_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.run stats",
        description="Render the telemetry recorded in a sweep manifest "
        "(phase profile, metrics, trace summary).",
    )
    parser.add_argument(
        "campaign_dir",
        help="artifact directory containing manifest.json (a campaign, "
        "shard, or merged directory)",
    )
    return parser


def _stats_main(argv: Sequence[str]) -> int:
    import json

    from repro.obs.profile import SWEEP_PHASES, format_profile
    from repro.obs.traceio import summarize_trace, validate_trace_file

    args = _build_stats_parser().parse_args(argv)
    directory = Path(args.campaign_dir)
    manifest_path = directory / "manifest.json"
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    except OSError:
        print(
            f"error: {manifest_path}: no readable manifest.json — pass a sweep "
            f"artifact directory (campaign, shard, or merged)",
            file=sys.stderr,
        )
        return 2
    except ValueError as exc:
        print(f"error: {manifest_path}: invalid JSON: {exc}", file=sys.stderr)
        return 2
    campaign_block = manifest.get("campaign") if isinstance(manifest, dict) else None
    name = campaign_block.get("name", "?") if isinstance(campaign_block, dict) else "?"
    execution = manifest.get("execution") if isinstance(manifest, dict) else None
    if not isinstance(execution, dict):
        print(f"error: {manifest_path}: manifest has no execution block", file=sys.stderr)
        return 2
    n_points = manifest.get("n_points", "?")
    wall = float(execution.get("wall_seconds") or 0.0)
    rate = f", {float(n_points) / wall:.1f} points/s" if wall > 0 and n_points != "?" else ""
    print(f"campaign {name}: {n_points} points, {wall:.2f} s wall{rate}")
    cache_block = execution.get("cache")
    if isinstance(cache_block, dict):
        print(
            f"plan cache {cache_block.get('path')}: "
            f"{cache_block.get('hits', 0)} hits, {cache_block.get('misses', 0)} misses, "
            f"{cache_block.get('writes', 0)} writes, {cache_block.get('errors', 0)} errors"
        )
        for note in cache_block.get("notes") or []:
            print(f"  note: {note}")
    telemetry = execution.get("telemetry")
    if not isinstance(telemetry, dict):
        print(
            "no telemetry recorded — re-run the sweep with --profile and/or "
            "--trace-out (see docs/observability.md)"
        )
        return 1
    profile = telemetry.get("profile")
    if isinstance(profile, dict) and any(profile.get(phase) for phase in SWEEP_PHASES):
        print()
        print(format_profile({k: float(v) for k, v in profile.items()}, wall))
    metrics = telemetry.get("metrics")
    if isinstance(metrics, dict):
        counters = metrics.get("counter", {})
        if counters:
            print()
            print("counters")
            width = max(len(key) for key in counters)
            for key in sorted(counters):
                print(f"  {key:<{width}} : {counters[key]}")
        histograms = metrics.get("histogram", {})
        for key in sorted(histograms):
            summary = histograms[key]
            print(
                f"  {key}: n={summary.get('count')} mean={summary.get('mean', 0.0):.4f}s "
                f"min={summary.get('min', 0.0):.4f}s max={summary.get('max', 0.0):.4f}s"
            )
    trace = telemetry.get("trace")
    if isinstance(trace, dict) and trace.get("file"):
        trace_path = directory / str(trace["file"])
        print()
        try:
            summary = summarize_trace(validate_trace_file(trace_path))
        except ValueError as exc:
            print(f"trace {trace_path}: invalid: {exc}", file=sys.stderr)
            return 2
        print(f"trace {trace_path}: {summary['spans']} spans, {summary['dropped_events']} dropped")
        for category in sorted(summary["categories"]):
            entry = summary["categories"][category]
            print(
                f"  {category:<8} {entry['events']:>6} events  {entry['span_ms']:>10.2f} ms span time"
            )
    return 0


def _sweep_main(argv: Sequence[str]) -> int:
    from repro.sweep import (
        ShardSpec,
        campaign,
        campaigns,
        execute_campaign,
        expand_campaign,
        shard_dirname,
        write_artifacts,
    )

    if argv and argv[0] == "merge":
        return _merge_main(argv[1:])

    args = _build_sweep_parser().parse_args(argv)

    if args.list:
        for spec in campaigns():
            print(f"{spec.name:<26} {spec.n_points:>3} points  {spec.description}")
        return 0

    if args.campaign is None:
        _build_sweep_parser().print_usage()
        return 2
    if args.jobs < 1:
        print("error: --jobs must be at least 1", file=sys.stderr)
        return 2
    if args.chunk is not None and args.chunk < 1:
        print("error: --chunk must be at least 1", file=sys.stderr)
        return 2
    shard = None
    if args.shard is not None:
        try:
            shard = ShardSpec.parse(args.shard)
        except ValueError as exc:
            print(f"error: --shard: {exc}", file=sys.stderr)
            return 2
    # Validate the backend up front: an explicit --backend numpy on a host
    # without numpy is a usage error, not a mid-campaign crash.
    from repro.sim.backend import resolve_backend
    from repro.sim.simulator import SimulationError

    try:
        resolve_backend(args.backend)
    except SimulationError as exc:
        print(f"error: --backend: {exc}", file=sys.stderr)
        return 2
    try:
        spec = campaign(args.campaign)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2

    try:
        points = expand_campaign(spec)
    except (KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    try:
        shard_points = shard.select(points) if shard is not None else points
    except ValueError as exc:
        # An explicit span can overrun the grid (e.g. a heal plan for a
        # since-edited campaign) — usage error, not a traceback.
        print(f"error: --shard: {exc}", file=sys.stderr)
        return 2
    if shard is not None:
        start, stop = shard.bounds(len(points))
        print(
            f"shard {shard}: points [{start}, {stop}) of {len(points)}",
            file=sys.stderr,
        )

    if args.dry_run:
        scope = f"shard {shard} = {len(shard_points)} of " if shard is not None else ""
        print(f"campaign {spec.name}: {scope}{len(points)} points over scenario {spec.scenario}")
        for point in shard_points:
            params = " ".join(f"{key}={value}" for key, value in sorted(point.params.items()))
            print(f"  point {point.index:>3}  horizon={point.horizon_cycles} {params} point-seed={point.seed}")
        return 0

    # A shard's artifacts nest under the campaign directory so slices never
    # clobber campaign-level (full or merged) artifacts — in-place re-cutting
    # a fleet from a merged directory must not destroy its resume source.
    shard_subdir = shard_dirname(shard) if shard is not None else None

    reuse = None
    if args.resume or args.resume_from_store:
        from repro.sweep import ResumeError, load_reusable_results

        # Campaign-level artifacts (a full or merged run) win over the
        # shard's own previous slice, which wins over store rows; every
        # source is spec_hash-validated through the same record gate.
        # Damaged artifacts or a damaged store (truncated/corrupt JSON,
        # records contradicting the expansion, a missing database file) are
        # a hard usage error with the path named: silently recomputing
        # would mask the corruption, silently reusing would propagate it.
        reuse = {}
        try:
            if args.resume:
                reuse = load_reusable_results(spec, Path(args.out))
                if shard_subdir is not None:
                    for index, record in load_reusable_results(
                        spec, Path(args.out), subdir=shard_subdir
                    ).items():
                        reuse.setdefault(index, record)
        except ResumeError as exc:
            print(f"error: --resume: {exc}", file=sys.stderr)
            return 2
        if args.resume_from_store:
            from repro.store import StoreError, load_reusable_results_from_store

            try:
                for index, record in load_reusable_results_from_store(
                    spec, Path(args.resume_from_store)
                ).items():
                    reuse.setdefault(index, record)
            except (ResumeError, StoreError) as exc:
                print(f"error: --resume-from-store: {exc}", file=sys.stderr)
                return 2
        shard_indices = {point.index for point in shard_points}
        reuse = {index: record for index, record in reuse.items() if index in shard_indices}
        sources = [str(Path(args.out) / spec.name)] if args.resume else []
        if args.resume_from_store:
            sources.append(f"store {args.resume_from_store}")
        if reuse:
            print(
                f"resume: reusing {len(reuse)}/{len(shard_points)} points from "
                f"{' + '.join(sources)}",
                file=sys.stderr,
            )
        else:
            print(
                "resume: no reusable results (missing artifacts or campaign mismatch "
                f"in {' + '.join(sources)}); running the full campaign",
                file=sys.stderr,
            )

    batch = {"auto": None, "on": True, "off": False}[args.batch]
    tracer = None
    if args.trace_out is not None:
        from repro.obs import tracing

        tracer = tracing.install()
    try:
        result = execute_campaign(
            spec,
            jobs=args.jobs,
            progress=_sweep_progress,
            chunk=args.chunk,
            reuse=reuse,
            shard=shard,
            batch=batch,
            backend=args.backend,
            trace=args.trace_out is not None,
            profile=args.profile,
            plan_cache=args.plan_cache,
        )
    finally:
        if tracer is not None:
            from repro.obs import tracing

            tracing.uninstall()
    if batch is True and not result.batched_points and result.n_computed:
        print(
            f"batch: scenario {spec.scenario!r} does not support batched "
            f"execution; points ran per-instance",
            file=sys.stderr,
        )
    for record in result.batch_fallbacks:
        # A group that quietly lost batching is a perf bug waiting to hide;
        # name every reason (the manifest keeps the same records).
        print(
            f"batch: {len(record['points'])} point(s) fell back to per-instance "
            f"execution: {record['reason']}",
            file=sys.stderr,
        )
    trace_path = None
    if tracer is not None:
        from repro.obs.traceio import trace_document, write_trace

        artifact_dir = Path(args.out) / spec.name
        if shard_subdir is not None:
            artifact_dir = artifact_dir / shard_subdir
        trace_path = _resolve_trace_path(args.trace_out, artifact_dir)
        events = tracer.drain() + result.trace_events
        dropped = tracer.dropped + result.trace_dropped
        metadata: Dict[str, object] = {"campaign": spec.name}
        if shard is not None:
            metadata["shard"] = str(shard)
        document = trace_document(
            events, labels={tracer.pid: "sweep"}, metadata=metadata, dropped=dropped
        )
        write_trace(trace_path, document)
        try:
            file_ref = str(trace_path.relative_to(artifact_dir))
        except ValueError:
            # A trace outside the artifact dir is recorded by absolute path
            # (sweep merge resolves relative names against the shard dir).
            file_ref = str(trace_path.resolve())
        if result.telemetry is not None:
            result.telemetry["trace"] = {
                "file": file_ref,
                "events": sum(1 for event in document["traceEvents"] if event.get("ph") != "M"),
                "dropped": dropped,
            }
    paths = write_artifacts(spec, result, Path(args.out), subdir=shard_subdir)
    sharded = f"shard {shard}, " if shard is not None else ""
    reused = f", {result.n_reused} reused" if result.n_reused else ""
    batched = (
        f", {result.batched_points} batched ({result.backend})" if result.batched_points else ""
    )
    if result.batch_fallbacks:
        fallen = sum(len(record["points"]) for record in result.batch_fallbacks)
        batched += f", {fallen} fell back"
    if result.cache is not None:
        batched += (
            f", cache {result.cache['hits']} hit{'s' if result.cache['hits'] != 1 else ''}"
            f"/{result.cache['misses']} miss"
        )
        if result.cache["errors"]:
            batched += f"/{result.cache['errors']} errors"
    rate = result.n_points / max(result.wall_seconds, 1e-9)
    print(
        f"campaign {spec.name}: {result.n_points} points over scenario {spec.scenario} "
        f"({sharded}{args.jobs} job{'s' if args.jobs != 1 else ''}, chunk {result.chunk}, "
        f"{result.wall_seconds:.2f} s, {rate:.1f} points/s{reused}{batched})"
    )
    for label in ("results_json", "results_csv", "manifest_json"):
        print(f"  {paths[label]}")
    if trace_path is not None:
        print(f"  {trace_path}")
    if args.profile and result.telemetry is not None:
        from repro.obs.profile import format_profile

        print(format_profile(result.telemetry.get("profile", {}), result.wall_seconds))
    if result.failed_points:
        # Artifacts for the surviving points are already on disk (written
        # above); the failed ones are recorded in the manifest's execution
        # block and heal as missing points — exit 1 so callers notice.
        for record in result.failed_points:
            print(f"failed point {record['label']}: {record['error']}", file=sys.stderr)
        print(
            f"campaign {spec.name}: {result.n_failed} point(s) failed; "
            "re-run them via 'sweep merge --heal' or the fleet orchestrator",
            file=sys.stderr,
        )
        return 1
    return 0


def _resolve_trace_path(trace_out: str, artifact_dir: Path) -> Path:
    """A bare ``--trace-out`` filename lands next to the campaign artifacts
    (shard runs: inside the shard subdirectory, so per-host traces never
    collide); any path with a directory part is taken literally."""
    path = Path(trace_out)
    if path.name == trace_out:
        return artifact_dir / path
    return path


def _build_fleet_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.run fleet",
        description=(
            "Autonomously drive a whole campaign through supervised sweep "
            "workers: cost-weighted shard cuts, timeouts, heal-driven retry "
            "with exponential backoff, and a fleet.json ledger.  Exit 0 = "
            "complete; 4 = retry budget exhausted (partial artifacts + "
            "heal.json written); 2 = usage error.  See docs/fleet.md."
        ),
    )
    parser.add_argument("campaign", nargs="?", help="campaign name (see 'sweep --list')")
    parser.add_argument(
        "--workers",
        type=int,
        default=2,
        help="concurrent workers; each runs one cost-weighted shard through "
        "'sweep --shard' (default: %(default)s)",
    )
    parser.add_argument(
        "--out",
        default=DEFAULT_SWEEP_OUT,
        help="artifact root; merged artifacts, fleet.json and fleet-logs/ "
        "land in <out>/<campaign>/ (default: %(default)s)",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=3,
        help="heal rounds after the initial dispatch before degrading to "
        "partial artifacts (default: %(default)s)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=600.0,
        help="seconds before a worker is declared hung and SIGKILLed; "
        "0 disables (default: %(default)s)",
    )
    parser.add_argument(
        "--backoff-base",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="heal-round backoff starts here and doubles per round "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--backoff-cap",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="ceiling for the exponential backoff (default: %(default)s)",
    )
    parser.add_argument(
        "--worker-jobs",
        type=int,
        default=1,
        help="--jobs passed to each worker (workers already parallelise "
        "across shards; default: %(default)s)",
    )
    parser.add_argument(
        "--transport",
        default="local",
        help="worker transport (default: %(default)s; the registry is where "
        "ssh/object-storage transports slot in)",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="run workers with --trace-out/--profile so the merged manifest "
        "carries telemetry and a stitched multi-shard trace",
    )
    parser.add_argument(
        "--store",
        default=None,
        metavar="DB",
        help="results-store database: accepted shard artifacts are ingested "
        "the moment validation accepts them, and shard cuts calibrate from "
        "stored timings; store failures degrade to ledger notes, never "
        "fleet failure (see docs/store.md)",
    )
    parser.add_argument(
        "--plan-cache",
        default=None,
        metavar="DIR",
        help="shared prepared-state snapshot cache passed to every worker "
        "(default: <out>/<campaign>/plan-cache, provisioned automatically); "
        "warm workers skip preparation and the already-simulated prefix, "
        "and the ledger aggregates hit/miss totals fleet-wide",
    )
    parser.add_argument(
        "--no-plan-cache",
        action="store_true",
        help="disable the shared plan cache (workers always cold-start)",
    )
    parser.add_argument(
        "--chaos",
        default=None,
        metavar="SPEC",
        help="fault injection for chaos testing: comma-separated "
        "fault:ordinal pairs (kill / hang / truncate; the ordinal counts "
        "worker launches fleet-wide), e.g. 'kill:0,hang:3,truncate:5'",
    )
    parser.add_argument(
        "--poll-interval",
        type=float,
        default=0.05,
        metavar="SECONDS",
        help="supervisor heartbeat (default: %(default)s)",
    )
    return parser


def _fleet_main(argv: Sequence[str]) -> int:
    if argv and argv[0] == "status":
        return _fleet_status_main(argv[1:])

    from repro.fleet import EXIT_PARTIAL, FleetConfig, parse_chaos, run_fleet

    args = _build_fleet_parser().parse_args(argv)
    if args.campaign is None:
        _build_fleet_parser().print_usage()
        return 2
    chaos = {}
    if args.chaos:
        try:
            chaos = parse_chaos(args.chaos)
        except ValueError as exc:
            print(f"error: --chaos: {exc}", file=sys.stderr)
            return 2
    config = FleetConfig(
        campaign=args.campaign,
        workers=args.workers,
        out=Path(args.out),
        max_retries=args.max_retries,
        timeout=args.timeout if args.timeout > 0 else None,
        backoff_base=args.backoff_base,
        backoff_cap=args.backoff_cap,
        worker_jobs=args.worker_jobs,
        transport=args.transport,
        trace=args.trace,
        store=Path(args.store) if args.store else None,
        plan_cache=Path(args.plan_cache) if args.plan_cache else None,
        plan_cache_enabled=not args.no_plan_cache,
        chaos=chaos,
        poll_interval=args.poll_interval,
    )
    try:
        result = run_fleet(config)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if result.exit_code == EXIT_PARTIAL:
        print(
            f"fleet {args.campaign}: retry budget exhausted; partial artifacts, "
            f"heal.json and {result.ledger_path} preserve all completed work",
            file=sys.stderr,
        )
    return result.exit_code


def _fleet_status_main(argv: Sequence[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.run fleet status",
        description="Render the fleet.json ledger of a past fleet run.",
    )
    parser.add_argument(
        "directory",
        help="campaign artifact directory (or a fleet.json path)",
    )
    args = parser.parse_args(argv)

    from repro.fleet import load_ledger, render_ledger

    try:
        payload = load_ledger(Path(args.directory))
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(render_ledger(payload))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    arguments = list(argv) if argv is not None else sys.argv[1:]
    # ``sweep``, ``fleet``, ``stats`` and ``store`` are subcommands with
    # their own flags; dispatch before the single-scenario parser can
    # reject them.
    if arguments and arguments[0] == "sweep":
        return _sweep_main(arguments[1:])
    if arguments and arguments[0] == "fleet":
        return _fleet_main(arguments[1:])
    if arguments and arguments[0] == "stats":
        return _stats_main(arguments[1:])
    if arguments and arguments[0] == "store":
        from repro.store.cli import store_main

        return store_main(arguments[1:])

    args = _build_parser().parse_args(arguments)

    if args.list:
        for spec in scenarios():
            print(f"{spec.name:<22} {spec.description} (default horizon {spec.default_horizon_cycles} cycles)")
        return 0

    if args.scenario is None:
        _build_parser().print_usage()
        return 2
    try:
        spec = scenario(args.scenario)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2

    horizon = _horizon_cycles(args)
    effective = horizon if horizon is not None else spec.default_horizon_cycles

    try:
        if args.trace_out is not None:
            from repro.obs import tracing
            from repro.obs.traceio import trace_document, write_trace

            with tracing.capture() as tracer:
                code = _dispatch(args, spec, horizon, effective)
            document = trace_document(
                tracer.drain(),
                labels={tracer.pid: spec.name},
                metadata={"scenario": spec.name},
                dropped=tracer.dropped,
            )
            path = write_trace(Path(args.trace_out), document)
            print(f"  trace written to {path}")
            return code
        return _dispatch(args, spec, horizon, effective)
    except ValueError as exc:
        # Scenario configs validate their horizons (e.g. "the horizon leaves
        # no room for the recovery to play out"); surface that as a CLI error
        # rather than a traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _dispatch(args: argparse.Namespace, spec, horizon: Optional[int], effective: int) -> int:
    if args.compare:
        dense_s, dense_stats = _timed_run(spec.name, horizon, dense=True)
        event_s, event_stats = _timed_run(spec.name, horizon, dense=False)
        print(f"scenario {spec.name}: {effective} cycles simulated")
        _print_stats(event_stats)
        print(f"  dense kernel        : {dense_s * 1e3:8.1f} ms wall-clock")
        print(f"  event-driven kernel : {event_s * 1e3:8.1f} ms wall-clock")
        print(f"  speedup             : {dense_s / max(event_s, 1e-9):8.2f}x")
        if dense_stats != event_stats:
            print("  WARNING: kernels disagree on the statistics above", file=sys.stderr)
            return 1
        return 0

    elapsed, stats = _timed_run(spec.name, horizon, dense=args.dense)
    kernel = "dense" if args.dense else "event-driven"
    rate = effective / max(elapsed, 1e-9)
    print(f"scenario {spec.name}: {effective} cycles simulated ({kernel} kernel)")
    _print_stats(stats)
    print(f"  wall-clock {elapsed * 1e3:.1f} ms  ({rate / 1e6:.2f} Mcycle/s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
