"""The Figure 6b PULPissimo area breakdown.

Figure 6b shows the fraction of PULPissimo area taken by a 4-link /
6-SCM-line PELS: about **9.5 %** of the logic area, dropping to about **1 %**
when the 192 KiB of SRAM is included.  The logic-area shares of the other
blocks (processing domain, peripherals, interconnect) are modelled with
PULPissimo-representative proportions and anchored so that the PELS share
reproduces the paper's number.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.area.model import PelsAreaModel
from repro.core.config import PelsConfig

# Gate-equivalents per SRAM bit (6T bitcell plus periphery, 65 nm).
SRAM_GE_PER_BIT = 1.5
KIB = 1024


@dataclass
class PulpissimoAreaModel:
    """Logic-area composition of PULPissimo (without PELS and without SRAM).

    The shares are representative of the published PULPissimo floorplan:
    the processing domain (core, debug, FLL control) is roughly a third of
    the logic, the peripheral subsystem (uDMA plus peripherals) roughly
    half, and the interconnect the remainder.
    """

    processing_domain_kge: float = 85.0
    peripherals_kge: float = 115.0
    interconnect_kge: float = 36.0
    sram_bytes: int = 192 * KIB
    pels_model: PelsAreaModel = field(default_factory=PelsAreaModel)

    @property
    def logic_kge_without_pels(self) -> float:
        """Logic area excluding PELS and SRAM."""
        return self.processing_domain_kge + self.peripherals_kge + self.interconnect_kge

    @property
    def sram_kge(self) -> float:
        """Gate-equivalent area of the L2 SRAM."""
        return self.sram_bytes * 8 * SRAM_GE_PER_BIT / 1000.0

    def breakdown(self, pels_config: PelsConfig, include_sram: bool = False) -> Dict[str, float]:
        """Absolute areas (kGE) of every block, optionally including the SRAM."""
        pels_kge = self.pels_model.estimate(pels_config).total_kge
        data = {
            "PELS": pels_kge,
            "Processing domain": self.processing_domain_kge,
            "Peripherals": self.peripherals_kge,
            "Interconnect": self.interconnect_kge,
        }
        if include_sram:
            data["SRAM"] = self.sram_kge
        return data

    def fractions(self, pels_config: PelsConfig, include_sram: bool = False) -> Dict[str, float]:
        """Area fractions (0..1) of every block — the quantity Figure 6b plots."""
        absolute = self.breakdown(pels_config, include_sram=include_sram)
        total = sum(absolute.values())
        return {name: value / total for name, value in absolute.items()}

    def pels_fraction(self, pels_config: PelsConfig, include_sram: bool = False) -> float:
        """Fraction of the SoC taken by PELS."""
        return self.fractions(pels_config, include_sram=include_sram)["PELS"]


def figure6b_breakdown(
    pels_config: PelsConfig = PelsConfig(n_links=4, scm_lines=6),
    model: PulpissimoAreaModel | None = None,
) -> Dict[str, Dict[str, float]]:
    """Reproduce both Figure 6b views: logic-only and including the SRAM."""
    area_model = model if model is not None else PulpissimoAreaModel()
    return {
        "logic_fractions": area_model.fractions(pels_config, include_sram=False),
        "with_sram_fractions": area_model.fractions(pels_config, include_sram=True),
        "absolute_kge": area_model.breakdown(pels_config, include_sram=True),
    }
