"""Analytic gate-count model of PELS.

Figure 6a decomposes PELS area into **Trigger**, **Execution**, **Memory**,
**Registers**, and **Other**.  The model assigns each a gate cost:

* per link: one trigger unit, one execution unit, one set of private
  configuration registers (mask, condition, base address, FIFO, capture);
* per SCM line (per link): 48 bits of standard-cell memory plus its share of
  the read/write decode;
* shared: top-level glue (event broadcast, configuration decode, action
  routing), plus a small per-link share.

The coefficients are anchored at the paper's 1-link/4-line = 7 kGE point and
keep the sweep within the range plotted in Figure 6a (up to ~54 kGE for the
8-link/8-line configuration).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.core.config import PelsConfig

# Reference areas of the general-purpose cores the paper compares against
# (synthesized at the same 250 MHz / TT / 25 C operating point), in kGE.
BASELINE_CORE_AREAS_KGE: Dict[str, float] = {
    "ibex": 27.0,
    "picorv32": 14.5,
}


@dataclass(frozen=True)
class AreaCoefficients:
    """Per-block gate costs in kGE."""

    trigger_per_link: float = 0.70
    execution_per_link: float = 1.70
    registers_per_link: float = 0.97
    memory_per_line: float = 0.35
    memory_per_link_overhead: float = 0.10
    other_shared: float = 2.03
    other_per_link: float = 0.10


@dataclass
class AreaBreakdown:
    """Area of one PELS configuration, split like the Figure 6a legend."""

    n_links: int
    scm_lines: int
    components_kge: Dict[str, float] = field(default_factory=dict)

    @property
    def total_kge(self) -> float:
        """Total area in kGE."""
        return sum(self.components_kge.values())

    def component(self, name: str) -> float:
        """Area of one component in kGE (0 if absent)."""
        return self.components_kge.get(name, 0.0)

    def as_dict(self) -> Dict[str, float]:
        """Plain mapping including the total."""
        data = dict(self.components_kge)
        data["Total"] = self.total_kge
        return data


class PelsAreaModel:
    """Maps a :class:`~repro.core.config.PelsConfig` to a gate-count breakdown."""

    COMPONENT_NAMES = ("Trigger", "Execution", "Memory", "Registers", "Other")

    def __init__(self, coefficients: AreaCoefficients = AreaCoefficients()) -> None:
        self.coefficients = coefficients

    def estimate(self, config: PelsConfig) -> AreaBreakdown:
        """Area breakdown of ``config``."""
        c = self.coefficients
        n = config.n_links
        lines = config.scm_lines
        components = {
            "Trigger": n * c.trigger_per_link,
            "Execution": n * c.execution_per_link,
            "Registers": n * c.registers_per_link,
            "Memory": n * (lines * c.memory_per_line + c.memory_per_link_overhead),
            "Other": c.other_shared + n * c.other_per_link,
        }
        return AreaBreakdown(n_links=n, scm_lines=lines, components_kge=components)

    def estimate_config(self, n_links: int, scm_lines: int) -> AreaBreakdown:
        """Convenience overload taking the two swept parameters directly."""
        return self.estimate(PelsConfig(n_links=n_links, scm_lines=scm_lines))

    def ratio_to_core(self, config: PelsConfig, core: str) -> float:
        """How many times smaller than ``core`` this PELS configuration is."""
        try:
            core_area = BASELINE_CORE_AREAS_KGE[core.lower()]
        except KeyError as exc:
            raise KeyError(f"unknown baseline core {core!r}; known: {sorted(BASELINE_CORE_AREAS_KGE)}") from exc
        total = self.estimate(config).total_kge
        if total == 0:
            raise ZeroDivisionError("PELS area model returned zero area")
        return core_area / total
