"""The Figure 6a area sweep: links x SCM lines, against the baseline cores."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.area.model import AreaBreakdown, BASELINE_CORE_AREAS_KGE, PelsAreaModel

PAPER_LINK_SWEEP: Tuple[int, ...] = (1, 2, 3, 4, 6, 8)
PAPER_LINE_SWEEP: Tuple[int, ...] = (4, 6, 8)


@dataclass(frozen=True)
class AreaSweepPoint:
    """One bar of Figure 6a."""

    n_links: int
    scm_lines: int
    breakdown: AreaBreakdown

    @property
    def total_kge(self) -> float:
        """Total PELS area for this configuration."""
        return self.breakdown.total_kge


def figure6a_sweep(
    links: Sequence[int] = PAPER_LINK_SWEEP,
    lines: Sequence[int] = PAPER_LINE_SWEEP,
    model: PelsAreaModel | None = None,
) -> List[AreaSweepPoint]:
    """Compute the full Figure 6a sweep (one point per links x lines pair)."""
    area_model = model if model is not None else PelsAreaModel()
    points: List[AreaSweepPoint] = []
    for n_links in links:
        for scm_lines in lines:
            breakdown = area_model.estimate_config(n_links, scm_lines)
            points.append(AreaSweepPoint(n_links=n_links, scm_lines=scm_lines, breakdown=breakdown))
    return points


def sweep_as_table(points: Sequence[AreaSweepPoint]) -> str:
    """Render the sweep as a text table (component columns follow the figure legend)."""
    components = PelsAreaModel.COMPONENT_NAMES
    header = f"{'links':>5s} {'lines':>5s} " + " ".join(f"{c:>10s}" for c in components) + f" {'Total':>10s}"
    rows = [header, "-" * len(header)]
    for point in points:
        row = f"{point.n_links:5d} {point.scm_lines:5d} "
        row += " ".join(f"{point.breakdown.component(c):10.2f}" for c in components)
        row += f" {point.total_kge:10.2f}"
        rows.append(row)
    rows.append("")
    for core, area in sorted(BASELINE_CORE_AREAS_KGE.items()):
        rows.append(f"reference {core:<10s} {area:6.1f} kGE")
    return "\n".join(rows)


def minimal_configuration_summary(model: PelsAreaModel | None = None) -> Dict[str, float]:
    """Headline numbers of the minimal configuration (Section IV-C text)."""
    area_model = model if model is not None else PelsAreaModel()
    minimal = area_model.estimate_config(1, 4)
    return {
        "pels_minimal_kge": minimal.total_kge,
        "ibex_kge": BASELINE_CORE_AREAS_KGE["ibex"],
        "picorv32_kge": BASELINE_CORE_AREAS_KGE["picorv32"],
        "ibex_ratio": BASELINE_CORE_AREAS_KGE["ibex"] / minimal.total_kge,
        "picorv32_ratio": BASELINE_CORE_AREAS_KGE["picorv32"] / minimal.total_kge,
    }
