"""Silicon-area models (the Design Compiler substitute).

The paper synthesizes PELS in TSMC 65 nm at 250 MHz (TT, 25 C) and reports
area in kilo-gate-equivalents (kGE).  We model area analytically: each block
(trigger unit, execution unit, per-link registers, SCM lines, shared glue)
contributes a gate count, anchored so that the paper's reported points are
met — 7 kGE for the minimal 1-link/4-line configuration, about 27 kGE for
Ibex and 14.5 kGE for PicoRV32, and a 4-link/6-line PELS costing ~9.5 % of
the PULPissimo logic area (~1 % including the 192 KiB SRAM).
"""

from repro.area.model import AreaBreakdown, PelsAreaModel, BASELINE_CORE_AREAS_KGE
from repro.area.sweep import AreaSweepPoint, figure6a_sweep
from repro.area.soc import PulpissimoAreaModel, figure6b_breakdown

__all__ = [
    "AreaBreakdown",
    "AreaSweepPoint",
    "BASELINE_CORE_AREAS_KGE",
    "PelsAreaModel",
    "PulpissimoAreaModel",
    "figure6a_sweep",
    "figure6b_breakdown",
]
