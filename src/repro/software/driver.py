"""Firmware-style PELS driver.

The driver programs PELS exclusively through its memory-mapped configuration
window (no direct Python access to the link objects), the way the boot
firmware on the Ibex core would: microcode upload, trigger mask/condition,
per-link base address, enable bits, and status/capture readback.

Every access goes through the SoC interconnect and the peripheral bridge and
therefore consumes simulated cycles; the driver advances the simulation
until the transfer completes (polling semantics).
"""

from __future__ import annotations

from typing import List

from repro.bus.transaction import BusRequest, TransferKind
from repro.core.assembler import Program
from repro.core.isa import Command, encode_command
from repro.core.pels import (
    GLOBAL_ENABLE_BIT,
    LINK_REG_BASE_ADDR,
    LINK_REG_CAPTURE,
    LINK_REG_CONDITION,
    LINK_REG_ENABLE,
    LINK_REG_MASK,
    LINK_REG_STATUS,
    LINK_SCM_WINDOW,
    LINK_WINDOW_BASE,
    LINK_WINDOW_STRIDE,
    REG_GLOBAL_CTRL,
    REG_NUM_LINKS,
    REG_SCM_LINES,
)
from repro.core.trigger import TriggerCondition
from repro.soc.pulpissimo import PulpissimoSoc


class PelsDriver:
    """Polling configuration driver for PELS, running "on" the main core."""

    def __init__(self, soc: PulpissimoSoc, master: str = "ibex_fw", timeout_cycles: int = 200) -> None:
        if soc.pels is None:
            raise ValueError("the SoC was built without PELS; nothing to drive")
        self.soc = soc
        self.master = master
        self.timeout_cycles = timeout_cycles
        self.base_address = soc.address_map.peripheral_base("pels")
        self.transfers_issued = 0

    # ------------------------------------------------------------ raw accessors

    def write_reg(self, offset: int, value: int) -> None:
        """Blocking write to a PELS configuration register."""
        self._transfer(TransferKind.WRITE, offset, value)

    def read_reg(self, offset: int) -> int:
        """Blocking read of a PELS configuration register."""
        return self._transfer(TransferKind.READ, offset, 0)

    def _transfer(self, kind: TransferKind, offset: int, value: int) -> int:
        request = BusRequest(
            master=self.master,
            kind=kind,
            address=self.base_address + offset,
            wdata=value,
        )
        self.soc.interconnect.submit(request)
        self.soc.run_until(lambda: request.done, max_cycles=self.timeout_cycles, label="PELS config access")
        self.transfers_issued += 1
        return request.rdata if kind is TransferKind.READ else 0

    # ------------------------------------------------------------ identification

    def probe(self) -> dict:
        """Read the identification registers (links, SCM lines, enable state)."""
        return {
            "n_links": self.read_reg(REG_NUM_LINKS),
            "scm_lines": self.read_reg(REG_SCM_LINES),
            "enabled": bool(self.read_reg(REG_GLOBAL_CTRL) & GLOBAL_ENABLE_BIT),
        }

    def set_global_enable(self, enabled: bool) -> None:
        """Enable or disable event processing globally."""
        self.write_reg(REG_GLOBAL_CTRL, GLOBAL_ENABLE_BIT if enabled else 0)

    # ------------------------------------------------------------ link programming

    def _link_window(self, link_index: int) -> int:
        n_links = self.soc.pels.config.n_links
        if not 0 <= link_index < n_links:
            raise IndexError(f"link index {link_index} out of range [0, {n_links})")
        return LINK_WINDOW_BASE + link_index * LINK_WINDOW_STRIDE

    def upload_program(self, link_index: int, program: Program | List[Command]) -> None:
        """Write a program into a link's SCM, padding the rest with ``end``."""
        commands = list(program.commands) if isinstance(program, Program) else list(program)
        scm_lines = self.soc.pels.config.scm_lines
        if len(commands) > scm_lines:
            raise ValueError(f"program has {len(commands)} commands but the SCM holds {scm_lines}")
        window = self._link_window(link_index) + LINK_SCM_WINDOW
        padded = commands + [Command.end()] * (scm_lines - len(commands))
        for line, command in enumerate(padded):
            encoded = encode_command(command)
            self.write_reg(window + 8 * line, encoded & 0xFFFF_FFFF)
            self.write_reg(window + 8 * line + 4, (encoded >> 32) & 0xFFFF)

    def configure_trigger(
        self,
        link_index: int,
        mask: int,
        condition: TriggerCondition = TriggerCondition.ANY_SELECTED_ACTIVE,
        base_address: int = 0,
    ) -> None:
        """Program a link's trigger mask, condition, and sequenced-action base address."""
        window = self._link_window(link_index)
        self.write_reg(window + LINK_REG_MASK, mask)
        self.write_reg(window + LINK_REG_CONDITION, int(condition))
        self.write_reg(window + LINK_REG_BASE_ADDR, base_address)

    def enable_link(self, link_index: int, enabled: bool = True) -> None:
        """Arm (or disarm) a link's trigger unit."""
        self.write_reg(self._link_window(link_index) + LINK_REG_ENABLE, int(enabled))

    def setup_link(
        self,
        link_index: int,
        program: Program | List[Command],
        trigger_mask: int,
        condition: TriggerCondition = TriggerCondition.ANY_SELECTED_ACTIVE,
        base_address: int = 0,
    ) -> None:
        """Complete link bring-up: upload the microcode, configure and arm the trigger."""
        self.upload_program(link_index, program)
        self.configure_trigger(link_index, trigger_mask, condition, base_address)
        self.enable_link(link_index, True)

    # ---------------------------------------------------------------- monitoring

    def link_status(self, link_index: int) -> dict:
        """Decode a link's status register."""
        status = self.read_reg(self._link_window(link_index) + LINK_REG_STATUS)
        return {
            "fifo_level": status & 0xFF,
            "enabled": bool(status & (1 << 8)),
            "condition_and": bool(status & (1 << 9)),
            "busy": bool(status & (1 << 10)),
        }

    def read_capture(self, link_index: int) -> int:
        """Read back a link's capture register (last ``capture`` result)."""
        return self.read_reg(self._link_window(link_index) + LINK_REG_CAPTURE)
