"""Firmware-style software support.

Real systems configure PELS from the main core over the memory-mapped
configuration window.  :class:`~repro.software.driver.PelsDriver` models that
firmware: it issues configuration reads and writes through the SoC
interconnect and the peripheral bridge (the same path the Ibex core uses)
and blocks until each transfer completes, exactly like a polling driver
would.
"""

from repro.software.driver import PelsDriver

__all__ = ["PelsDriver"]
