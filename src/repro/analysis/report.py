"""One-shot experiment report.

:func:`generate_report` runs every experiment of the paper's evaluation
(Table I, the latency comparison, Figure 5, Figure 6) and assembles a single
markdown document with the measured values next to the paper's reference
numbers — the machine-generated counterpart of EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.analysis.latency import (
    PAPER_IBEX_CYCLES,
    PAPER_INSTANT_CYCLES,
    PAPER_SEQUENCED_CYCLES,
    LatencyComparison,
    measure_latency_comparison,
)
from repro.analysis.tables import format_table1
from repro.area.soc import figure6b_breakdown
from repro.area.sweep import figure6a_sweep, minimal_configuration_summary, sweep_as_table
from repro.power.report import format_figure5
from repro.power.scenarios import Figure5Dataset, run_figure5

PAPER_RATIOS = {
    "linking_iso_latency": 2.5,
    "idle_iso_latency": 1.5,
    "linking_iso_freq": 1.6,
}


@dataclass
class ExperimentReport:
    """All measured artefacts plus the rendered markdown."""

    latency: LatencyComparison
    figure5: Figure5Dataset
    figure6a_summary: Dict[str, float]
    figure6b: Dict[str, Dict[str, float]]
    markdown: str = field(default="", repr=False)

    def headline(self) -> Dict[str, float]:
        """The headline quantities a reader checks first."""
        return {
            "sequenced_cycles": float(self.latency.pels_sequenced_cycles or 0),
            "instant_cycles": float(self.latency.pels_instant_cycles or 0),
            "ibex_cycles": float(self.latency.ibex_interrupt_cycles or 0),
            "linking_iso_latency_ratio": self.figure5.ratio("linking_iso_latency"),
            "linking_iso_freq_ratio": self.figure5.ratio("linking_iso_freq"),
            "idle_iso_latency_ratio": self.figure5.ratio("idle_iso_latency"),
            "pels_minimal_kge": self.figure6a_summary["pels_minimal_kge"],
            "pels_soc_logic_fraction": self.figure6b["logic_fractions"]["PELS"],
        }


def _check(measured: float, reference: float, tolerance: float = 0.25) -> str:
    """Mark a measured value as matching the paper within ``tolerance``."""
    if reference == 0:
        return "n/a"
    return "ok" if abs(measured - reference) / reference <= tolerance else "off"


def generate_report(n_events: int = 6, idle_cycles: int = 1500) -> ExperimentReport:
    """Run every experiment and return the assembled report."""
    latency = measure_latency_comparison()
    figure5 = run_figure5(n_events=n_events, idle_cycles=idle_cycles)
    figure6a_summary = minimal_configuration_summary()
    figure6b = figure6b_breakdown()

    sections = []
    sections.append("# PELS reproduction — experiment report\n")

    sections.append("## Headline comparison\n")
    sections.append("| quantity | paper | measured | status |")
    sections.append("|---|---|---|---|")
    rows = [
        ("PELS sequenced action latency (cycles)", PAPER_SEQUENCED_CYCLES, latency.pels_sequenced_cycles),
        ("PELS instant action latency (cycles)", PAPER_INSTANT_CYCLES, latency.pels_instant_cycles),
        ("Ibex interrupt latency (cycles)", PAPER_IBEX_CYCLES, latency.ibex_interrupt_cycles),
        ("linking power ratio, iso-latency", PAPER_RATIOS["linking_iso_latency"], figure5.ratio("linking_iso_latency")),
        ("idle power ratio, iso-latency", PAPER_RATIOS["idle_iso_latency"], figure5.ratio("idle_iso_latency")),
        ("linking power ratio, iso-frequency", PAPER_RATIOS["linking_iso_freq"], figure5.ratio("linking_iso_freq")),
        ("minimal PELS area (kGE)", 7.0, figure6a_summary["pels_minimal_kge"]),
        ("PELS share of PULPissimo logic area", 0.095, figure6b["logic_fractions"]["PELS"]),
    ]
    for label, reference, measured in rows:
        measured_value = float(measured or 0)
        sections.append(
            f"| {label} | {reference:g} | {measured_value:.3g} | {_check(measured_value, float(reference))} |"
        )

    sections.append("\n## Latency comparison (Section IV-B)\n")
    sections.append("```\n" + latency.format() + "\n```")

    sections.append("\n## Figure 5 — power breakdown\n")
    sections.append("```\n" + format_figure5(figure5) + "\n```")

    sections.append("\n## Figure 6a — area sweep\n")
    sections.append("```\n" + sweep_as_table(figure6a_sweep()) + "\n```")

    sections.append("\n## Figure 6b — PULPissimo area breakdown\n")
    logic = figure6b["logic_fractions"]
    with_sram = figure6b["with_sram_fractions"]
    sections.append("| block | logic-only share | share incl. SRAM |")
    sections.append("|---|---|---|")
    for name in sorted(logic):
        sections.append(f"| {name} | {logic[name] * 100:.1f} % | {with_sram.get(name, 0.0) * 100:.1f} % |")
    sections.append(f"| SRAM | — | {with_sram['SRAM'] * 100:.1f} % |")

    sections.append("\n## Table I — feature comparison\n")
    sections.append("```\n" + format_table1() + "\n```")

    markdown = "\n".join(sections) + "\n"
    return ExperimentReport(
        latency=latency,
        figure5=figure5,
        figure6a_summary=figure6a_summary,
        figure6b=figure6b,
        markdown=markdown,
    )


def write_report(path: str, n_events: int = 6, idle_cycles: int = 1500) -> ExperimentReport:
    """Generate the report and write its markdown to ``path``."""
    report = generate_report(n_events=n_events, idle_cycles=idle_cycles)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(report.markdown)
    return report
