"""Feature model of the state-of-the-art peripheral-event systems (Table I).

Table I of the paper compares industrial and academic event-linking
solutions along five axes: routing topology, event-processing capability,
support for instant actions, support for sequenced actions, and open-source
availability.  The entries below transcribe that comparison so the benchmark
can regenerate the table and the tests can check PELS's differentiators
(the only system with both action types, microcode processing, and an open
licence).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple


@dataclass(frozen=True)
class SotaSystem:
    """One row of Table I."""

    name: str
    vendor: str
    category: str  # "industry" or "academia"
    routing_topology: Optional[str]  # "channel", "matrix", or None (no event routing)
    event_processing: Optional[str]  # e.g. "combinational", "CLB", "microcode"
    instant_actions: bool
    sequenced_actions: bool
    open_source: bool
    note: str = ""

    @property
    def supports_both_action_types(self) -> bool:
        """Whether the system offers instant *and* sequenced actions."""
        return self.instant_actions and self.sequenced_actions


SOTA_SYSTEMS: Tuple[SotaSystem, ...] = (
    SotaSystem(
        name="PRS",
        vendor="Silicon Labs",
        category="industry",
        routing_topology="channel",
        event_processing="combinational logic",
        instant_actions=True,
        sequenced_actions=False,
        open_source=False,
    ),
    SotaSystem(
        name="LELC",
        vendor="Renesas",
        category="industry",
        routing_topology="channel",
        event_processing="CLB",
        instant_actions=True,
        sequenced_actions=False,
        open_source=False,
    ),
    SotaSystem(
        name="EVSYS",
        vendor="Microchip",
        category="industry",
        routing_topology="channel",
        event_processing="custom (CCL LUT)",
        instant_actions=True,
        sequenced_actions=False,
        open_source=False,
        note="Up to three events routed to the Configurable Custom Logic.",
    ),
    SotaSystem(
        name="PPI",
        vendor="Nordic",
        category="industry",
        routing_topology="channel",
        event_processing="custom (dual task fan-out)",
        instant_actions=True,
        sequenced_actions=False,
        open_source=False,
        note="One channel can trigger up to two actions simultaneously.",
    ),
    SotaSystem(
        name="PIM",
        vendor="STMicroelectronics",
        category="industry",
        routing_topology="matrix",
        event_processing=None,
        instant_actions=True,
        sequenced_actions=False,
        open_source=False,
    ),
    SotaSystem(
        name="XGATE",
        vendor="NXP",
        category="industry",
        routing_topology=None,
        event_processing="microcode",
        instant_actions=False,
        sequenced_actions=True,
        open_source=False,
        note="I/O co-processor designed to take the interrupt load off the main core.",
    ),
    SotaSystem(
        name="AESRN",
        vendor="Bjornerud et al.",
        category="academia",
        routing_topology="channel",
        event_processing="CLB (asynchronous)",
        instant_actions=True,
        sequenced_actions=False,
        open_source=False,
    ),
)

PELS_ENTRY = SotaSystem(
    name="PELS",
    vendor="This work",
    category="academia",
    routing_topology="channel",
    event_processing="microcode",
    instant_actions=True,
    sequenced_actions=True,
    open_source=True,
)


def all_systems() -> List[SotaSystem]:
    """Every Table I row, PELS last (as in the paper)."""
    return [*SOTA_SYSTEMS, PELS_ENTRY]


def systems_with_sequenced_actions() -> List[SotaSystem]:
    """Systems offering sequenced actions (PELS and the XGATE co-processor)."""
    return [system for system in all_systems() if system.sequenced_actions]


def open_source_systems() -> List[SotaSystem]:
    """Systems available as open source (only PELS in Table I)."""
    return [system for system in all_systems() if system.open_source]
