"""Text timelines of linking events.

Debugging a linking scenario usually means answering "what happened in which
cycle": when did the producer pulse its event, when did the trigger unit
fire, when did each bus transfer land, when did the consumer react.  The
helpers here turn the simulator's traces, the event fabric statistics, and a
link's records into a compact, readable text timeline — the textual
equivalent of looking at a waveform viewer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.link import Link, LinkEventRecord
from repro.sim.trace import TraceRecorder


@dataclass(frozen=True)
class TimelineEntry:
    """One annotated point in time."""

    cycle: int
    label: str
    detail: str = ""

    def render(self) -> str:
        """Single formatted line."""
        detail = f"  {self.detail}" if self.detail else ""
        return f"@{self.cycle:>7d}  {self.label}{detail}"


class LinkTimeline:
    """Collects and renders the timeline of one link's serviced events."""

    def __init__(self, link: Link) -> None:
        self.link = link

    def entries(self) -> List[TimelineEntry]:
        """Timeline entries for every completed linking event of the link."""
        entries: List[TimelineEntry] = []
        for index, record in enumerate(self.link.records):
            entries.extend(self._entries_for_record(index, record))
        return sorted(entries, key=lambda entry: (entry.cycle, entry.label))

    def _entries_for_record(self, index: int, record: LinkEventRecord) -> List[TimelineEntry]:
        prefix = f"event {index}"
        entries = [TimelineEntry(record.trigger_cycle, f"{prefix}: trigger", "condition satisfied, pushed to FIFO")]
        if record.first_action_cycle is not None:
            entries.append(
                TimelineEntry(
                    record.first_action_cycle,
                    f"{prefix}: instant action",
                    f"latency {record.instant_latency} cycles",
                )
            )
        if record.last_bus_write_cycle is not None:
            entries.append(
                TimelineEntry(
                    record.last_bus_write_cycle,
                    f"{prefix}: sequenced write-back",
                    f"latency {record.sequenced_latency} cycles",
                )
            )
        if record.completion_cycle is not None:
            entries.append(
                TimelineEntry(
                    record.completion_cycle,
                    f"{prefix}: end",
                    f"total {record.total_latency} cycles",
                )
            )
        return entries

    def render(self) -> str:
        """Full timeline as text (one line per entry)."""
        entries = self.entries()
        if not entries:
            return f"{self.link.name}: no linking events serviced yet"
        header = f"Timeline of {self.link.name} ({len(self.link.records)} events serviced)"
        return "\n".join([header, "-" * len(header), *(entry.render() for entry in entries)])

    def latency_histogram(self) -> dict:
        """Mapping of total latency (cycles) to number of events."""
        histogram: dict = {}
        for record in self.link.records:
            if record.total_latency is None:
                continue
            histogram[record.total_latency] = histogram.get(record.total_latency, 0) + 1
        return dict(sorted(histogram.items()))


def bus_transfer_timeline(traces: TraceRecorder, bus_name: str = "apb", limit: Optional[int] = None) -> str:
    """Render the bus-transfer trace recorded by the APB fabric."""
    signal = f"{bus_name}.transfer"
    if signal not in traces:
        return f"no transfers recorded on {bus_name!r}"
    events = traces.trace(signal).changes()
    if limit is not None:
        events = events[-limit:]
    lines = [f"{bus_name} transfers ({len(events)} shown):"]
    lines.extend(f"  @{event.cycle:>7d}  {event.value}" for event in events)
    return "\n".join(lines)


def merge_timelines(timelines: Sequence[LinkTimeline]) -> str:
    """Interleave the timelines of several links chronologically."""
    entries: List[tuple] = []
    for timeline in timelines:
        for entry in timeline.entries():
            entries.append((entry.cycle, timeline.link.name, entry))
    if not entries:
        return "no linking events serviced yet"
    entries.sort(key=lambda item: (item[0], item[1]))
    return "\n".join(f"{link_name:<12s} {entry.render()}" for _, link_name, entry in entries)
