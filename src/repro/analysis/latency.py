"""Linking-latency comparison (Section IV-B text).

The paper reports, for the same minimal linking event:

* **7 cycles** for a PELS sequenced action (APB-dependent),
* **2 cycles** for a PELS instant action (fixed),
* **16 cycles** for the Ibex interrupt-driven baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.workloads.minimal import (
    run_minimal_ibex_linking,
    run_minimal_pels_linking,
)

PAPER_SEQUENCED_CYCLES = 7
PAPER_INSTANT_CYCLES = 2
PAPER_IBEX_CYCLES = 16


@dataclass
class LatencyComparison:
    """Measured latencies of the three linking mechanisms, in cycles."""

    pels_sequenced_cycles: Optional[int]
    pels_instant_cycles: Optional[int]
    ibex_interrupt_cycles: Optional[int]

    def speedup_vs_ibex(self, instant: bool = False) -> float:
        """How many times faster PELS handles the event than the Ibex baseline."""
        pels = self.pels_instant_cycles if instant else self.pels_sequenced_cycles
        if not pels or not self.ibex_interrupt_cycles:
            raise ValueError("latencies have not been measured")
        return self.ibex_interrupt_cycles / pels

    def as_dict(self) -> Dict[str, Optional[int]]:
        """Mapping suitable for tabular reporting."""
        return {
            "pels_sequenced": self.pels_sequenced_cycles,
            "pels_instant": self.pels_instant_cycles,
            "ibex_interrupt": self.ibex_interrupt_cycles,
        }

    def format(self) -> str:
        """Aligned text with the paper's reference values."""
        lines = [
            f"{'mechanism':<22s} {'measured':>9s} {'paper':>7s}",
            "-" * 40,
            f"{'PELS sequenced action':<22s} {self.pels_sequenced_cycles!s:>9s} {PAPER_SEQUENCED_CYCLES:>7d}",
            f"{'PELS instant action':<22s} {self.pels_instant_cycles!s:>9s} {PAPER_INSTANT_CYCLES:>7d}",
            f"{'Ibex interrupt':<22s} {self.ibex_interrupt_cycles!s:>9s} {PAPER_IBEX_CYCLES:>7d}",
        ]
        return "\n".join(lines)


def measure_latency_comparison() -> LatencyComparison:
    """Run the three minimal-linking measurements on fresh SoC instances."""
    sequenced = run_minimal_pels_linking(instant=False)
    instant = run_minimal_pels_linking(instant=True)
    ibex = run_minimal_ibex_linking()
    return LatencyComparison(
        pels_sequenced_cycles=sequenced.sequenced_latency,
        pels_instant_cycles=instant.instant_latency,
        ibex_interrupt_cycles=ibex.sequenced_latency,
    )
