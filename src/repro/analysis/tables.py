"""Rendering of Table I."""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.analysis.sota import SotaSystem, all_systems

_CHECK = "yes"
_CROSS = "no"


def _mark(flag: bool) -> str:
    return _CHECK if flag else _CROSS


def table1_rows(systems: Sequence[SotaSystem] | None = None) -> List[Dict[str, str]]:
    """Table I as a list of row dictionaries (useful for programmatic checks)."""
    rows = []
    for system in (systems if systems is not None else all_systems()):
        rows.append(
            {
                "system": f"{system.vendor} {system.name}" if system.vendor != "This work" else "This work (PELS)",
                "category": system.category,
                "routing_topology": system.routing_topology or "-",
                "event_processing": system.event_processing or "-",
                "instant_actions": _mark(system.instant_actions),
                "sequenced_actions": _mark(system.sequenced_actions),
                "open_source": _mark(system.open_source),
            }
        )
    return rows


def format_table1(systems: Sequence[SotaSystem] | None = None) -> str:
    """Table I rendered as aligned text."""
    rows = table1_rows(systems)
    columns = (
        ("system", "System", 28),
        ("routing_topology", "Routing", 10),
        ("event_processing", "Processing", 26),
        ("instant_actions", "Instant", 8),
        ("sequenced_actions", "Sequenced", 10),
        ("open_source", "Open source", 12),
    )
    header = " ".join(f"{title:<{width}s}" for _, title, width in columns)
    lines = [header, "-" * len(header)]
    current_category = None
    for row, system in zip(rows, systems if systems is not None else all_systems()):
        if system.category != current_category:
            current_category = system.category
            lines.append(f"[{current_category}]")
        lines.append(" ".join(f"{row[key]:<{width}s}" for key, _, width in columns))
    return "\n".join(lines)
