"""Analyses that regenerate the paper's tables and headline comparisons."""

from repro.analysis.sota import SotaSystem, SOTA_SYSTEMS, PELS_ENTRY, all_systems
from repro.analysis.tables import format_table1, table1_rows
from repro.analysis.latency import LatencyComparison, measure_latency_comparison
from repro.analysis.timeline import LinkTimeline, bus_transfer_timeline, merge_timelines
from repro.analysis.report import ExperimentReport, generate_report, write_report

__all__ = [
    "ExperimentReport",
    "LatencyComparison",
    "LinkTimeline",
    "PELS_ENTRY",
    "SOTA_SYSTEMS",
    "SotaSystem",
    "all_systems",
    "bus_transfer_timeline",
    "format_table1",
    "generate_report",
    "measure_latency_comparison",
    "merge_timelines",
    "table1_rows",
    "write_report",
]
