"""Persistent, content-addressed caches shared across workers and fleets.

The first (and so far only) resident is :class:`PlanCache` — the
prepared-state snapshot cache behind ``sweep --plan-cache DIR`` and the
fleet controller's shared warm-start directory.  See
:mod:`repro.cache.plan_cache` for the key scheme and the
never-wrong-results contract.
"""

from repro.cache.plan_cache import CacheError, PlanCache, group_cache_key

__all__ = ["CacheError", "PlanCache", "group_cache_key"]
