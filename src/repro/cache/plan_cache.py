"""On-disk prepared-state snapshot cache: fleet-wide warm starts.

A :class:`PlanCache` maps a **batch group** — the unit the sweep executor
already simulates as one instance: (scenario, dense flag, non-horizon
params, horizon list) — to mid-run snapshots of its prepared scenario,
published at the stop boundaries a cold run pauses at anyway.  A warm run
serves every horizon that has an exact-match snapshot straight from the
cache (restore + finalize, zero simulated cycles) and covers any leftover
horizons by simulating from the deepest snapshot below them — a fully
warm cache eliminates the simulation entirely.

**Key scheme.**  ``group_cache_key`` hashes the snapshot schema version
plus the group identity into one sha256 hex digest — computable *before*
any preparation happens, which is the whole point of the warm path.  The
plan fingerprint itself cannot participate in the key (no prepared
instance exists yet when a warm worker looks up); it travels in each
snapshot blob's header instead, where :func:`~repro.sim.snapshot.
restore_prepared` validates it against the restored simulator and seeds
the process-wide plan intern table.  Entries are laid out as
``<root>/<key[:2]>/<key>/<elapsed>.snap``.

**Never wrong results.**  Every read failure — missing file, corrupt or
truncated blob, stale schema, unresolvable class — is caught, counted in
``counters.errors``, recorded as a note, and answered with the next-best
candidate or a cold start.  Publishes write to a temp file and
``os.replace`` into place (atomic on POSIX), skip keys that already
exist, and swallow their own failures the same way.  The cache can only
ever make a run faster or leave it untouched; byte-identical artifacts
are enforced by the ``cache-smoke`` CI job and
``tests/sweep/test_plan_cache_sweep.py``.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.obs import tracing
from repro.sim.snapshot import (
    SNAPSHOT_SCHEMA_VERSION,
    RestoredSnapshot,
    SnapshotError,
    restore_prepared,
    snapshot_prepared,
)


class CacheError(Exception):
    """A named plan-cache integrity failure.

    Wraps the underlying :class:`~repro.sim.snapshot.SnapshotError` or OS
    error with the cache-entry path.  :class:`PlanCache` raises it only
    through its internal accounting — the public ``lookup``/``publish``
    surface converts every instance into a counted, noted cold-start
    fallback and never lets one escape into a run.
    """


def group_cache_key(
    scenario: str,
    dense: bool,
    params: Mapping[str, object],
    horizons: Sequence[int],
) -> str:
    """Content address for one batch group's snapshot directory.

    Hashes the snapshot schema version (so a schema bump cold-starts the
    whole cache), the scenario name, the dense flag, the sorted
    non-horizon params, and the horizon list.  Horizons are part of the
    identity because ``batch_prepare`` sizes drive scripts off the full
    horizon list; two campaigns sharing a prefix of horizons get separate
    entries rather than risky reuse.  The backend is deliberately *not*
    in the key: snapshots are backend-neutral (see ``SimState.
    __getstate__``), so a numpy fleet can warm-start from a pure-python
    seed run and vice versa.
    """
    material = {
        "schema": SNAPSHOT_SCHEMA_VERSION,
        "scenario": scenario,
        "dense": bool(dense),
        "params": {str(key): value for key, value in sorted(params.items())},
        "horizons": [int(horizon) for horizon in horizons],
    }
    canonical = json.dumps(material, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass
class CacheCounters:
    """Hit/miss/write/error tallies for one cache handle's lifetime."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    errors: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "errors": self.errors,
        }


class PlanCache:
    """One process's handle on a shared snapshot cache directory.

    Counters and notes accumulate per handle; the sweep executor ships
    them through the chunk outcome into the campaign telemetry and the
    manifest's ``execution.cache`` block, and the fleet controller
    aggregates them across workers into the ledger.
    """

    __slots__ = ("root", "counters", "notes")

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.counters = CacheCounters()
        #: Human-readable records of every swallowed failure
        #: ("<entry>: <why>"), surfaced in the manifest/ledger so silent
        #: fallbacks stay visible.
        self.notes: List[str] = []

    def _entry_dir(self, key: str) -> Path:
        return self.root / key[:2] / key

    def _note(self, path: Path, exc: Exception) -> None:
        self.counters.errors += 1
        note = f"{path.relative_to(self.root)}: {exc}"
        if note not in self.notes:
            self.notes.append(note)

    # ------------------------------------------------------------------ read

    def candidates(self, key: str, max_elapsed: int) -> List[Tuple[int, Path]]:
        """Published snapshots for ``key`` at elapsed ≤ ``max_elapsed``,
        deepest first (the restore order)."""
        directory = self._entry_dir(key)
        found: List[Tuple[int, Path]] = []
        try:
            entries = list(directory.iterdir())
        except OSError:
            return found
        for path in entries:
            if path.suffix != ".snap":
                continue
            try:
                elapsed = int(path.stem)
            except ValueError:
                continue
            if 0 < elapsed <= max_elapsed:
                found.append((elapsed, path))
        found.sort(reverse=True)
        return found

    def lookup(
        self, key: str, max_elapsed: int, exact: bool = False
    ) -> Optional[RestoredSnapshot]:
        """Restore the deepest usable snapshot at elapsed ≤ ``max_elapsed``.

        Walks candidates deepest-first; a corrupt/truncated/stale entry is
        counted, noted, and skipped in favour of the next shallower one.
        Returns ``None`` (a counted miss) when nothing restores — the
        caller cold-starts.  With ``exact=True`` only the entry at exactly
        ``max_elapsed`` qualifies — the probe the executor uses to serve a
        horizon's points without simulating anything at all.
        """
        tracer = tracing.TRACER
        start_ns = tracer.now_ns() if tracer is not None else 0
        candidates = self.candidates(key, max_elapsed)
        if exact:
            candidates = [(e, path) for e, path in candidates if e == max_elapsed]
        for elapsed, path in candidates:
            try:
                restored = restore_prepared(path.read_bytes())
                if restored.base_tick != elapsed:
                    raise SnapshotError(
                        f"entry named {elapsed} restored at cycle {restored.base_tick}"
                    )
            except (OSError, SnapshotError) as exc:
                self._note(path, CacheError(str(exc)))
                # Evict the unusable entry so a later publish can heal it
                # (publish skips existing paths).  Benign race: another
                # worker may have just replaced it with a good blob, in
                # which case this merely evicts one healthy entry.
                try:
                    path.unlink(missing_ok=True)
                except OSError:
                    pass
                continue
            self.counters.hits += 1
            if tracer is not None:
                tracer.event(
                    "cache.restore",
                    "cache",
                    start_ns,
                    tracer.now_ns() - start_ns,
                    {"key": key[:12], "elapsed": elapsed, "plan_shared": restored.plan_shared},
                )
            return restored
        self.counters.misses += 1
        if tracer is not None:
            tracer.event(
                "cache.restore",
                "cache",
                start_ns,
                tracer.now_ns() - start_ns,
                {"key": key[:12], "elapsed": None, "miss": True},
            )
        return None

    # ----------------------------------------------------------------- write

    def publish(self, key: str, prepared: object, elapsed: int) -> bool:
        """Publish a snapshot of ``prepared`` at simulated cycle ``elapsed``.

        No-op if the entry already exists (concurrent workers race to the
        same content; first writer wins and ``os.replace`` keeps even the
        race atomic).  Failures are counted and noted, never raised —
        publishing is strictly best-effort.  Returns True when a new entry
        landed on disk.
        """
        if elapsed <= 0:
            return False
        path = self._entry_dir(key) / f"{elapsed}.snap"
        if path.exists():
            return False
        tracer = tracing.TRACER
        start_ns = tracer.now_ns() if tracer is not None else 0
        try:
            blob = snapshot_prepared(prepared)
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
            tmp.write_bytes(blob)
            os.replace(tmp, path)
        except (OSError, SnapshotError) as exc:
            self._note(path, CacheError(str(exc)))
            return False
        self.counters.writes += 1
        if tracer is not None:
            tracer.event(
                "cache.publish",
                "cache",
                start_ns,
                tracer.now_ns() - start_ns,
                {"key": key[:12], "elapsed": elapsed, "bytes": len(blob)},
            )
        return True

    # ------------------------------------------------------------- reporting

    def stats(self) -> Dict[str, object]:
        """JSON-ready counters + notes (the ``execution.cache`` payload)."""
        payload: Dict[str, object] = {"path": str(self.root)}
        payload.update(self.counters.as_dict())
        payload["notes"] = sorted(self.notes)
        return payload


__all__ = ["CacheCounters", "CacheError", "PlanCache", "group_cache_key"]
