"""Mapping of simulated activity to the Figure 5 power components.

The breakdown follows the paper's legend: **Processor**, **RAM**,
**Interconnect**, **PELS**, **Others**, and **Leakage**.  Power is the
average over an observation window of ``window_cycles`` at ``frequency_hz``:
dynamic energy of every counted event divided by the window duration, plus
the per-block leakage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Tuple

from repro.power.components import TechnologyProfile, TECH_65NM_LP

# Components plotted in Figure 5, in stacking order.
COMPONENTS = ("Others", "PELS", "Processor", "RAM", "Interconnect", "Leakage")

ActivitySnapshot = Mapping[Tuple[str, str], int]


@dataclass
class PowerBreakdown:
    """Average power of one scenario, split by Figure 5 component."""

    scenario: str
    frequency_hz: float
    window_cycles: int
    components_uw: Dict[str, float] = field(default_factory=dict)

    @property
    def total_uw(self) -> float:
        """Total average power in microwatts."""
        return sum(self.components_uw.values())

    def component(self, name: str) -> float:
        """Power of one component in microwatts (0 if absent)."""
        return self.components_uw.get(name, 0.0)

    @property
    def window_seconds(self) -> float:
        """Observation window length in seconds."""
        return self.window_cycles / self.frequency_hz

    def ratio_to(self, other: "PowerBreakdown") -> float:
        """How many times more power ``other`` draws than this breakdown."""
        if self.total_uw == 0:
            raise ZeroDivisionError("cannot compute a ratio against zero power")
        return other.total_uw / self.total_uw

    def component_ratio_to(self, other: "PowerBreakdown", name: str) -> float:
        """Per-component power ratio ``other / self``."""
        own = self.component(name)
        if own == 0:
            raise ZeroDivisionError(f"component {name!r} has zero power in {self.scenario!r}")
        return other.component(name) / own

    def as_dict(self) -> Dict[str, float]:
        """Plain mapping of component name to microwatts (plus ``Total``)."""
        data = dict(self.components_uw)
        data["Total"] = self.total_uw
        return data


class PowerModel:
    """Activity-based average-power estimator."""

    def __init__(self, technology: TechnologyProfile = TECH_65NM_LP) -> None:
        self.technology = technology

    # ------------------------------------------------------------------ helpers

    @staticmethod
    def _get(activity: ActivitySnapshot, component: str, event: str) -> int:
        return activity.get((component, event), 0)

    @staticmethod
    def _component_event_total(activity: ActivitySnapshot, event: str) -> int:
        return sum(count for (comp, evt), count in activity.items() if evt == event)

    def _peripheral_accesses(self, activity: ActivitySnapshot) -> int:
        peripherals = ("gpio", "spi", "adc", "uart", "i2c", "pwm", "wdt", "timer")
        total = 0
        for (component, event), count in activity.items():
            if component in peripherals and event in ("bus_reads", "bus_writes"):
                total += count
        return total

    def _peripheral_active_cycles(self, activity: ActivitySnapshot) -> int:
        peripherals = ("gpio", "spi", "adc", "uart", "i2c", "pwm", "wdt", "timer")
        active_events = ("active_cycles", "shifting_cycles", "converting_cycles", "tx_cycles", "bus_cycles")
        total = 0
        for (component, event), count in activity.items():
            if component in peripherals and event in active_events:
                total += count
        return total

    # ----------------------------------------------------------------- estimate

    def estimate(
        self,
        activity: ActivitySnapshot,
        window_cycles: int,
        frequency_hz: float,
        scenario: str = "scenario",
        pels_present: bool = True,
    ) -> PowerBreakdown:
        """Compute the component power breakdown for one observation window."""
        if window_cycles <= 0:
            raise ValueError("window_cycles must be positive")
        if frequency_hz <= 0:
            raise ValueError("frequency_hz must be positive")
        energy = self.technology.energies
        window_seconds = window_cycles / frequency_hz

        # Dynamic energy per component, in picojoules.
        processor_pj = (
            self._get(activity, "ibex", "active_cycles") * energy.cpu_active_cycle_pj
            + self._get(activity, "ibex", "sleep_cycles") * energy.cpu_sleep_cycle_pj
        )
        ram_pj = (
            self._get(activity, "sram", "reads") * energy.sram_read_pj
            + self._get(activity, "sram", "writes") * energy.sram_write_pj
            + self._get(activity, "sram", "instruction_fetches") * energy.cpu_ifetch_pj
            + window_cycles * energy.sram_idle_cycle_pj
        )
        interconnect_pj = (
            self._get(activity, "apb", "grants") * energy.apb_transfer_pj
            + self._get(activity, "apb", "busy_cycles") * energy.apb_busy_cycle_pj
            + (
                self._get(activity, "soc_interconnect", "memory_requests")
                + self._get(activity, "soc_interconnect", "bridge_requests")
            )
            * energy.soc_interconnect_transfer_pj
        )
        pels_pj = 0.0
        if pels_present:
            pels_pj = (
                self._get(activity, "pels", "link_busy_cycles") * energy.pels_link_busy_cycle_pj
                + self._get(activity, "pels", "idle_cycles") * energy.pels_idle_cycle_pj
                + self._get(activity, "pels", "instant_actions") * energy.pels_instant_action_pj
                + self._get(activity, "pels", "scm_reads") * energy.scm_read_pj
                + self._get(activity, "pels", "scm_writes") * energy.scm_write_pj
            )
        others_pj = (
            window_cycles * energy.soc_background_cycle_pj
            + self._peripheral_accesses(activity) * energy.peripheral_access_pj
            + self._peripheral_active_cycles(activity) * energy.peripheral_active_cycle_pj
            + self._get(activity, "udma", "words_moved") * energy.peripheral_access_pj
        )

        def to_uw(picojoules: float) -> float:
            return picojoules * 1e-12 / window_seconds * 1e6

        components_uw = {
            "Processor": to_uw(processor_pj),
            "RAM": to_uw(ram_pj),
            "Interconnect": to_uw(interconnect_pj),
            "PELS": to_uw(pels_pj),
            "Others": to_uw(others_pj),
            "Leakage": energy.leakage_total_uw(include_pels=pels_present),
        }
        return PowerBreakdown(
            scenario=scenario,
            frequency_hz=frequency_hz,
            window_cycles=window_cycles,
            components_uw=components_uw,
        )


def diff_activity(before: ActivitySnapshot, after: ActivitySnapshot) -> Dict[Tuple[str, str], int]:
    """Per-key difference ``after - before`` (only non-negative deltas are kept)."""
    delta: Dict[Tuple[str, str], int] = {}
    for key, end_value in after.items():
        start_value = before.get(key, 0)
        if end_value > start_value:
            delta[key] = end_value - start_value
    return delta
