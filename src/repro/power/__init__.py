"""Activity-based power estimation (the PrimeTime substitute).

The paper estimates the power of a linking event with Synopsys PrimeTime on
the synthesized 65 nm netlist.  We cannot run PrimeTime, so the model here
follows the standard activity-based decomposition instead:

    P_component = (sum of events x energy-per-event) / window-time + P_leakage

The *events* (bus transfers, SRAM accesses, instruction fetches, busy
cycles, ...) come from the cycle-accurate simulation; the *energy
coefficients* are per-event energies representative of a 65 nm LP process at
1.2 V, grouped into the same components Figure 5 plots (Processor, RAM,
Interconnect, PELS, Others, Leakage).  Absolute numbers are indicative; the
quantity the reproduction tracks is the *ratio* between the PELS-driven and
Ibex-driven scenarios, which is produced by the simulated activity and the
operating frequency rather than by the coefficients themselves.
"""

from repro.power.components import EnergyCoefficients, TechnologyProfile, TECH_65NM_LP
from repro.power.model import PowerBreakdown, PowerModel
from repro.power.scenarios import (
    Figure5Dataset,
    ScenarioResult,
    measure_idle_power,
    measure_linking_power,
    run_figure5,
)
from repro.power.report import format_breakdown, format_figure5

__all__ = [
    "EnergyCoefficients",
    "Figure5Dataset",
    "PowerBreakdown",
    "PowerModel",
    "ScenarioResult",
    "TECH_65NM_LP",
    "TechnologyProfile",
    "format_breakdown",
    "format_figure5",
    "measure_idle_power",
    "measure_linking_power",
    "run_figure5",
]
