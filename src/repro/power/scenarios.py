"""The Figure 5 power scenarios.

Four scenarios, each measured for the Ibex-driven baseline and the
PELS-driven system:

* **Idle, iso-latency** — waiting for a linking event.  Ibex runs at 55 MHz
  (it needs the frequency to meet the 500 ns latency target), the PELS-based
  system at 27 MHz; in the PELS system the core's clock is gated.
* **Linking, iso-latency** — the event-handling window only (from the SPI
  end-of-transfer event until the linking action has fully landed).
* **Idle / Linking, iso-frequency** — same measurements with both systems
  clocked at 55 MHz.

The workload is the paper's: a threshold-crossing check after a µDMA-managed
SPI sensor readout (:mod:`repro.workloads.threshold`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.trigger import TriggerCondition
from repro.cpu.programs import build_threshold_isr
from repro.power.model import PowerBreakdown, PowerModel, diff_activity
from repro.soc.pulpissimo import PulpissimoSoc, SocConfig, build_soc
from repro.workloads.threshold import (
    GPIO_ALERT_MASK,
    SAMPLE_MASK,
    THRESHOLD_IRQ,
    ThresholdWorkload,
    ThresholdWorkloadConfig,
    _pels_figure3_program,
)

ISO_LATENCY_PELS_HZ = 27e6
ISO_LATENCY_IBEX_HZ = 55e6
ISO_FREQUENCY_HZ = 55e6
LATENCY_TARGET_NS = 500.0


@dataclass
class ScenarioResult:
    """One bar of Figure 5: the power breakdown plus bookkeeping."""

    breakdown: PowerBreakdown
    mode: str
    phase: str
    events_measured: int = 0
    window_cycles: int = 0

    @property
    def total_uw(self) -> float:
        """Total power in microwatts."""
        return self.breakdown.total_uw


@dataclass
class Figure5Dataset:
    """All eight bars of Figure 5."""

    results: Dict[str, ScenarioResult] = field(default_factory=dict)

    def add(self, key: str, result: ScenarioResult) -> None:
        """Store a scenario under its bar label (e.g. ``"linking_iso_latency_pels"``)."""
        self.results[key] = result

    def get(self, key: str) -> ScenarioResult:
        """Fetch a stored scenario by bar label."""
        return self.results[key]

    def ratio(self, phase_and_condition: str) -> float:
        """Ibex/PELS total power ratio for e.g. ``"linking_iso_latency"``."""
        ibex = self.results[f"{phase_and_condition}_ibex"]
        pels = self.results[f"{phase_and_condition}_pels"]
        return ibex.total_uw / pels.total_uw

    def ram_ratio(self, phase_and_condition: str) -> float:
        """Ibex/PELS RAM-component (memory system) power ratio."""
        ibex = self.results[f"{phase_and_condition}_ibex"]
        pels = self.results[f"{phase_and_condition}_pels"]
        pels_ram = pels.breakdown.component("RAM")
        if pels_ram == 0:
            raise ZeroDivisionError("PELS scenario has zero RAM power")
        return ibex.breakdown.component("RAM") / pels_ram


# ----------------------------------------------------------------------- setup


def _setup_pels_soc(config: ThresholdWorkloadConfig, frequency_hz: float, dense: bool = False) -> tuple:
    soc = build_soc(
        SocConfig(
            frequency_hz=frequency_hz, spi_cycles_per_word=config.spi_cycles_per_word, dense=dense
        )
    )
    assert soc.pels is not None
    soc.cpu.clock_gated = True
    program, base_address = _pels_figure3_program(soc, config)
    workload = ThresholdWorkload(soc, config)
    spi_eot_bit = 1 << soc.fabric.index_of(soc.spi.event_line_name("eot"))
    link = soc.pels.program_link(
        0,
        program,
        trigger_mask=spi_eot_bit,
        condition=TriggerCondition.ANY_SELECTED_ACTIVE,
        base_address=base_address,
    )
    return soc, workload, link


def _setup_ibex_soc(config: ThresholdWorkloadConfig, frequency_hz: float, dense: bool = False) -> tuple:
    soc = build_soc(
        SocConfig(
            frequency_hz=frequency_hz,
            with_pels=False,
            spi_cycles_per_word=config.spi_cycles_per_word,
            dense=dense,
        )
    )
    workload = ThresholdWorkload(soc, config)
    isr = build_threshold_isr(
        flag_register_address=soc.register_address("spi", "AFLAG"),
        flag_mask=0x1,
        data_register_address=soc.register_address("spi", "RXDATA"),
        data_mask=SAMPLE_MASK,
        threshold=config.threshold,
        gpio_set_register_address=soc.register_address("gpio", "OUT"),
        gpio_mask=GPIO_ALERT_MASK,
    )
    soc.cpu.register_isr(THRESHOLD_IRQ, isr)
    soc.irq_controller.enable_line(soc.spi.event_line_name("eot"), THRESHOLD_IRQ)
    return soc, workload


def build_idle_measurement_soc(
    mode: str,
    frequency_hz: float,
    config: Optional[ThresholdWorkloadConfig] = None,
    dense: bool = False,
) -> PulpissimoSoc:
    """Build a SoC armed for the Figure 5 idle measurement, ready to run.

    ``mode`` is ``"pels"`` (threshold link programmed, core clock-gated) or
    ``"ibex"`` (interrupt baseline, core in WFI).  The caller owns the run
    horizon, which is what lets the paper-scale sweep campaigns stretch the
    idle window to seconds of simulated time.
    """
    workload_config = config if config is not None else ThresholdWorkloadConfig()
    if mode == "pels":
        soc, _, _ = _setup_pels_soc(workload_config, frequency_hz, dense=dense)
    elif mode == "ibex":
        soc, _ = _setup_ibex_soc(workload_config, frequency_hz, dense=dense)
    else:
        raise ValueError(f"unknown mode {mode!r}; expected 'pels' or 'ibex'")
    return soc


# -------------------------------------------------------------------- measures


def measure_idle_power(
    mode: str,
    frequency_hz: float,
    idle_cycles: int = 2_000,
    model: Optional[PowerModel] = None,
    config: ThresholdWorkloadConfig = ThresholdWorkloadConfig(),
) -> ScenarioResult:
    """Average power while waiting for a linking event (no events arrive)."""
    model = model if model is not None else PowerModel()
    soc = build_idle_measurement_soc(mode, frequency_hz, config=config)
    before = soc.activity.as_dict()
    start_cycle = soc.simulator.current_cycle
    soc.run(idle_cycles)
    delta = diff_activity(before, soc.activity.as_dict())
    window = soc.simulator.current_cycle - start_cycle
    breakdown = model.estimate(
        delta,
        window_cycles=window,
        frequency_hz=frequency_hz,
        scenario=f"idle_{mode}",
        pels_present=(mode == "pels"),
    )
    return ScenarioResult(breakdown=breakdown, mode=mode, phase="idle", window_cycles=window)


def measure_linking_power(
    mode: str,
    frequency_hz: float,
    n_events: int = 8,
    model: Optional[PowerModel] = None,
    config: Optional[ThresholdWorkloadConfig] = None,
) -> ScenarioResult:
    """Average power over the event-linking windows of ``n_events`` events.

    The window of one event starts at the SPI end-of-transfer event and ends
    when the linking agent has completely handled it (PELS: microcode ``end``
    reached with the write-back landed; Ibex: handler finished and ``mret``
    executed).
    """
    model = model if model is not None else PowerModel()
    workload_config = config if config is not None else ThresholdWorkloadConfig(n_events=n_events)
    if mode == "pels":
        soc, workload, link = _setup_pels_soc(workload_config, frequency_hz)

        def events_done() -> int:
            return len(link.records)

    elif mode == "ibex":
        soc, workload = _setup_ibex_soc(workload_config, frequency_hz)

        def events_done() -> int:
            return soc.activity.get("ibex", "handlers_completed")

    else:
        raise ValueError(f"unknown mode {mode!r}; expected 'pels' or 'ibex'")

    accumulated: Dict = {}
    total_window = 0
    for event_index in range(workload_config.n_events):
        transfers_before = soc.spi.transfers_completed
        workload.start_transfer()
        soc.run_until(
            lambda: soc.spi.transfers_completed > transfers_before,
            max_cycles=5_000,
            label="SPI end of transfer",
        )
        window_start_cycle = soc.simulator.current_cycle
        before = soc.activity.as_dict()
        target = event_index + 1
        soc.run_until(lambda: events_done() >= target, max_cycles=5_000, label="linking completion")
        soc.run(2)  # let the final bus write retire inside the window
        delta = diff_activity(before, soc.activity.as_dict())
        total_window += soc.simulator.current_cycle - window_start_cycle
        for key, value in delta.items():
            accumulated[key] = accumulated.get(key, 0) + value
        soc.run(workload_config.event_gap_cycles)

    breakdown = model.estimate(
        accumulated,
        window_cycles=max(total_window, 1),
        frequency_hz=frequency_hz,
        scenario=f"linking_{mode}",
        pels_present=(mode == "pels"),
    )
    return ScenarioResult(
        breakdown=breakdown,
        mode=mode,
        phase="linking",
        events_measured=workload_config.n_events,
        window_cycles=total_window,
    )


def run_figure5(
    n_events: int = 8,
    idle_cycles: int = 2_000,
    model: Optional[PowerModel] = None,
) -> Figure5Dataset:
    """Reproduce the full Figure 5 dataset (eight bars)."""
    model = model if model is not None else PowerModel()
    dataset = Figure5Dataset()
    # Iso-latency: Ibex at 55 MHz, the PELS system at 27 MHz.
    dataset.add("idle_iso_latency_ibex", measure_idle_power("ibex", ISO_LATENCY_IBEX_HZ, idle_cycles, model))
    dataset.add("idle_iso_latency_pels", measure_idle_power("pels", ISO_LATENCY_PELS_HZ, idle_cycles, model))
    dataset.add(
        "linking_iso_latency_ibex", measure_linking_power("ibex", ISO_LATENCY_IBEX_HZ, n_events, model)
    )
    dataset.add(
        "linking_iso_latency_pels", measure_linking_power("pels", ISO_LATENCY_PELS_HZ, n_events, model)
    )
    # Iso-frequency: both systems at 55 MHz.
    dataset.add("idle_iso_freq_ibex", measure_idle_power("ibex", ISO_FREQUENCY_HZ, idle_cycles, model))
    dataset.add("idle_iso_freq_pels", measure_idle_power("pels", ISO_FREQUENCY_HZ, idle_cycles, model))
    dataset.add("linking_iso_freq_ibex", measure_linking_power("ibex", ISO_FREQUENCY_HZ, n_events, model))
    dataset.add("linking_iso_freq_pels", measure_linking_power("pels", ISO_FREQUENCY_HZ, n_events, model))
    return dataset


def latency_cycles_budget(frequency_hz: float, latency_target_ns: float = LATENCY_TARGET_NS) -> int:
    """How many cycles fit in the latency target at ``frequency_hz`` (iso-latency check)."""
    return int(latency_target_ns * 1e-9 * frequency_hz)
