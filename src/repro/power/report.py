"""Plain-text reporting of power results (the textual stand-in for Figure 5)."""

from __future__ import annotations

from typing import Iterable, List

from repro.power.model import COMPONENTS, PowerBreakdown
from repro.power.scenarios import Figure5Dataset

_BAR_ORDER = (
    ("idle_iso_latency", "Idle (iso-latency)"),
    ("linking_iso_latency", "Linking (iso-latency)"),
    ("idle_iso_freq", "Idle (iso-freq)"),
    ("linking_iso_freq", "Linking (iso-freq)"),
)


def format_breakdown(breakdown: PowerBreakdown) -> str:
    """Render one power breakdown as an aligned text block."""
    lines = [
        f"{breakdown.scenario}  "
        f"(f = {breakdown.frequency_hz / 1e6:.0f} MHz, window = {breakdown.window_cycles} cycles)"
    ]
    for component in COMPONENTS:
        lines.append(f"  {component:<13s} {breakdown.component(component):10.1f} uW")
    lines.append(f"  {'Total':<13s} {breakdown.total_uw:10.1f} uW")
    return "\n".join(lines)


def format_figure5(dataset: Figure5Dataset) -> str:
    """Render the whole Figure 5 dataset as a table plus the headline ratios."""
    header = f"{'Scenario':<24s} {'System':<6s} " + " ".join(f"{c:>13s}" for c in COMPONENTS) + f" {'Total':>10s}"
    lines: List[str] = [header, "-" * len(header)]
    for key, label in _BAR_ORDER:
        for system in ("ibex", "pels"):
            result = dataset.get(f"{key}_{system}")
            row = f"{label:<24s} {system:<6s} "
            row += " ".join(f"{result.breakdown.component(c):13.1f}" for c in COMPONENTS)
            row += f" {result.total_uw:10.1f}"
            lines.append(row)
    lines.append("")
    lines.append("Headline ratios (Ibex / PELS):")
    lines.append(f"  linking, iso-latency : {dataset.ratio('linking_iso_latency'):.2f}x   (paper: 2.5x)")
    lines.append(f"  idle,    iso-latency : {dataset.ratio('idle_iso_latency'):.2f}x   (paper: 1.5x)")
    lines.append(f"  linking, iso-freq    : {dataset.ratio('linking_iso_freq'):.2f}x   (paper: 1.6x)")
    lines.append(f"  RAM,     iso-latency : {dataset.ram_ratio('linking_iso_latency'):.2f}x   (paper: 3.7x)")
    lines.append(f"  RAM,     iso-freq    : {dataset.ram_ratio('linking_iso_freq'):.2f}x   (paper: 4.3x)")
    return "\n".join(lines)


def summarize_totals(breakdowns: Iterable[PowerBreakdown]) -> str:
    """One line per breakdown with its total power (compact comparison helper)."""
    return "\n".join(
        f"{breakdown.scenario:<28s} {breakdown.total_uw:10.1f} uW" for breakdown in breakdowns
    )
