"""Energy coefficients and the technology profile.

All dynamic energies are in picojoules per event; all leakage figures are in
microwatts.  The defaults describe a 65 nm low-power process at 1.2 V, TT
corner, 25 C — the paper's implementation technology — with magnitudes taken
from published PULP-class measurements (Ibex-class core ~ 10–20 uW/MHz, SRAM
macro access ~ 10–15 pJ, SCM access an order of magnitude below the SRAM,
APB transfer a few pJ).  The calibration notes in DESIGN.md explain how the
coefficients were anchored.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass(frozen=True)
class EnergyCoefficients:
    """Per-event dynamic energies (pJ) and per-block leakage (uW)."""

    # Processing domain -----------------------------------------------------
    cpu_active_cycle_pj: float = 6.0        # Ibex datapath + control per active cycle
    cpu_sleep_cycle_pj: float = 1.4         # WFI: clock tree still toggling
    cpu_ifetch_pj: float = 8.0              # instruction fetch served by the SRAM banks
    # Memory system ----------------------------------------------------------
    sram_read_pj: float = 12.0
    sram_write_pj: float = 13.0
    sram_idle_cycle_pj: float = 1.5         # bank clocking / retention while idle
    scm_read_pj: float = 0.5                # PELS private SCM line fetch
    scm_write_pj: float = 0.7
    # Interconnect -----------------------------------------------------------
    soc_interconnect_transfer_pj: float = 3.0
    apb_transfer_pj: float = 2.2
    apb_busy_cycle_pj: float = 0.15
    # PELS --------------------------------------------------------------------
    pels_link_busy_cycle_pj: float = 1.1
    pels_idle_cycle_pj: float = 1.5         # clock tree of a multi-link PELS while armed
    pels_instant_action_pj: float = 0.3
    # Peripherals / rest of the SoC -------------------------------------------
    peripheral_access_pj: float = 1.5
    peripheral_active_cycle_pj: float = 0.4
    soc_background_cycle_pj: float = 6.5    # FLL, always-on clock tree, pads ("Others")
    # Leakage (uW) -------------------------------------------------------------
    leakage_processor_uw: float = 38.0
    leakage_ram_uw: float = 95.0
    leakage_interconnect_uw: float = 14.0
    leakage_pels_uw: float = 3.0
    leakage_others_uw: float = 120.0

    def leakage_total_uw(self, include_pels: bool = True) -> float:
        """Total leakage power of the SoC in microwatts."""
        total = (
            self.leakage_processor_uw
            + self.leakage_ram_uw
            + self.leakage_interconnect_uw
            + self.leakage_others_uw
        )
        if include_pels:
            total += self.leakage_pels_uw
        return total


@dataclass(frozen=True)
class TechnologyProfile:
    """Named bundle of process conditions and energy coefficients."""

    name: str
    voltage_v: float
    corner: str
    temperature_c: float
    energies: EnergyCoefficients = field(default_factory=EnergyCoefficients)

    def scaled(self, voltage_v: float) -> "TechnologyProfile":
        """Return a profile with dynamic energies scaled by (V / V0)^2.

        Dynamic energy scales quadratically with supply voltage; leakage is
        left untouched (its voltage dependence is technology specific and not
        needed for the paper's scenarios).
        """
        if voltage_v <= 0:
            raise ValueError("supply voltage must be positive")
        ratio = (voltage_v / self.voltage_v) ** 2
        scaled_values: Dict[str, float] = {}
        for name, value in vars(self.energies).items():
            if name.endswith("_pj"):
                scaled_values[name] = value * ratio
            else:
                scaled_values[name] = value
        return TechnologyProfile(
            name=f"{self.name}@{voltage_v:.2f}V",
            voltage_v=voltage_v,
            corner=self.corner,
            temperature_c=self.temperature_c,
            energies=EnergyCoefficients(**scaled_values),
        )


TECH_65NM_LP = TechnologyProfile(name="tsmc65lp", voltage_v=1.2, corner="TT", temperature_c=25.0)
