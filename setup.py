"""Setup shim.

The execution environment is offline and has no ``wheel`` package, so PEP 660
editable installs (which must build a wheel) fail.  This shim lets
``pip install -e . --no-use-pep517 --no-build-isolation`` — and plain
``pip install -e .`` on environments where pip falls back to the legacy
path — use the classic ``setup.py develop`` route instead.  All project
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
