"""Fleet orchestration overhead: supervision must cost seconds, not shards.

The fleet promises that its machinery — cost-model cut, subprocess launch
bookkeeping, heartbeat polling, artifact validation, merge, ledger — adds
only a bounded constant on top of the critical-path worker.  This benchmark
holds that to a number: a 2-worker fleet run of the ``smoke`` campaign,
with ``overhead = fleet_wall - max(shard wall)`` (everything that is not
the slowest worker's own runtime) asserted under a hard ceiling.  Results
land in ``results/fleet_overhead.txt`` and the ``fleet_overhead`` section
of ``results/BENCH_kernel.json`` (consumed by the CI perf-regression job,
which asserts the same ceiling).

The ceiling is deliberately loose (seconds, not milliseconds): each worker
is a full CPython interpreter start plus campaign expansion, and shared CI
hosts jitter.  What it catches is the real regression class — supervision
polling going quadratic, validation re-reading artifacts per heartbeat, a
merge that re-executes points.
"""

import json

from repro.fleet import FleetConfig, run_fleet

#: Hard ceiling on non-worker orchestration wall time for a 2-shard fleet.
MAX_ORCHESTRATION_SECONDS = 5.0

WORKERS = 2


def test_bench_fleet_overhead(tmp_path, save_result, save_kernel_json):
    config = FleetConfig(
        campaign="smoke",
        workers=WORKERS,
        out=tmp_path / "fleet",
        timeout=120.0,
        poll_interval=0.02,
        echo=lambda message: None,
    )
    result = run_fleet(config)
    assert result.exit_code == 0 and result.status == "complete"

    payload = json.loads(result.ledger_path.read_text())
    fleet_wall = payload["wall_seconds"]
    attempts = [a for r in payload["rounds"] for a in r["attempts"]]
    critical_path = max(a["wall_seconds"] for a in attempts)
    overhead = max(0.0, fleet_wall - critical_path)
    per_shard = overhead / len(attempts)

    lines = [
        f"Fleet orchestration overhead (smoke campaign, {WORKERS} workers, "
        f"{len(attempts)} shard attempt(s)):",
        f"  fleet wall (cut+dispatch+supervise+merge) : {fleet_wall:8.2f} s",
        f"  critical-path worker                      : {critical_path:8.2f} s",
        f"  orchestration overhead                    : {overhead:8.2f} s "
        f"({per_shard:.2f} s/shard)",
        f"  ceiling                                   : {MAX_ORCHESTRATION_SECONDS:8.2f} s",
    ]
    save_result("fleet_overhead", "\n".join(lines))
    save_kernel_json(
        "fleet_overhead",
        {
            "campaign": "smoke",
            "workers": WORKERS,
            "shards": len(attempts),
            "fleet_wall_seconds": fleet_wall,
            "critical_path_seconds": critical_path,
            "per_shard_seconds": per_shard,
            "overhead": overhead,
            "floor": MAX_ORCHESTRATION_SECONDS,
            "unit": "seconds",
        },
    )

    assert overhead <= MAX_ORCHESTRATION_SECONDS, (
        f"fleet orchestration overhead {overhead:.2f}s exceeds the "
        f"{MAX_ORCHESTRATION_SECONDS:.1f}s ceiling"
    )
