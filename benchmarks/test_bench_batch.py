"""E12 — Batched multi-instance execution on pipeline-clock-ratio.

Runs the full ``pipeline-clock-ratio`` campaign (36 points: 4 clock ratios
x 3 sampling periods x 3 horizon depths) through both executors:

* **per-instance** (``--batch off``): every point builds and simulates its
  own SoC — the pre-batching behaviour;
* **batched** (``--batch``): the points of one (ratio, period) pair share a
  single prepared simulation under one interned schedule plan; only the
  120k-cycle horizon is actually simulated, and the 30k/60k points are
  snapshotted in passing.

With three horizon depths per group the batched executor simulates 4 units
of work where the per-instance executor simulates 1+2+4 = 7, so the
structural ceiling is 1.75x; the floor asserts 1.5x to absorb snapshot and
scheduling overhead plus CI noise.  The aggregated artifacts must be
byte-identical — which ``tests/sweep/test_batch.py`` pins for every
registry campaign; here it guards the measurement itself.

Results are appended to ``results/BENCH_kernel.json`` (``batch_speedup``
section) for the CI perf-regression job.
"""

import json
import time

from repro.sweep import campaign, execute_campaign, results_payload

CAMPAIGN = "pipeline-clock-ratio"
MIN_BATCH_SPEEDUP = 1.5


def _timed(batch):
    start = time.perf_counter()
    result = execute_campaign(campaign(CAMPAIGN), jobs=1, batch=batch)
    return time.perf_counter() - start, result


def test_bench_batched_execution_speedup(save_result, save_kernel_json):
    spec = campaign(CAMPAIGN)
    assert spec.n_points == 36

    # Counterbalanced order (serial, batched, batched, serial), scored by
    # the min of each pair: the passes are seconds long and shared hosts
    # drift between back-to-back measurements.
    serial_a, serial = _timed(batch=False)
    batched_a, batched = _timed(batch=True)
    batched_b, _ = _timed(batch=True)
    serial_b, _ = _timed(batch=False)
    serial_seconds = min(serial_a, serial_b)
    batched_seconds = min(batched_a, batched_b)

    assert json.dumps(results_payload(serial), sort_keys=True) == json.dumps(
        results_payload(batched), sort_keys=True
    )
    assert batched.batched_points == spec.n_points
    assert serial.batched_points == 0

    speedup = serial_seconds / max(batched_seconds, 1e-9)
    serial_rate = spec.n_points / serial_seconds
    batched_rate = spec.n_points / batched_seconds
    lines = [
        f"Batched execution on {CAMPAIGN} ({spec.n_points} points, "
        f"12 shared-prefix groups x 3 horizons):",
        f"  per-instance (--batch off) : {serial_seconds * 1e3:8.1f} ms "
        f"({serial_rate:.2f} points/s)",
        f"  batched      (--batch)     : {batched_seconds * 1e3:8.1f} ms "
        f"({batched_rate:.2f} points/s)",
        f"  speedup                    : {speedup:8.2f}x (structural ceiling 1.75x)",
        f"  aggregated artifacts       : byte-identical",
    ]
    save_result("batch_execution_speedup", "\n".join(lines))

    save_kernel_json(
        "batch_speedup",
        {
            "campaign": CAMPAIGN,
            "n_points": spec.n_points,
            "groups": 12,
            "serial_seconds": serial_seconds,
            "batched_seconds": batched_seconds,
            "serial_points_per_second": serial_rate,
            "batched_points_per_second": batched_rate,
            "speedup": speedup,
            "floor": MIN_BATCH_SPEEDUP,
        },
    )

    assert speedup >= MIN_BATCH_SPEEDUP
