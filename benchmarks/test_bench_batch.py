"""E12 — Batched multi-instance execution on pipeline-clock-ratio.

Runs the full ``pipeline-clock-ratio`` campaign (56 points: 4 clock ratios
x 2 sampling periods x 7 horizon depths) through three executors:

* **per-instance** (``--batch off``): every point builds and simulates its
  own SoC — the pre-batching behaviour;
* **batched, python backend**: the points of one (ratio, period) pair share
  a single prepared simulation under one interned schedule plan; only the
  70k-cycle horizon is actually simulated, and the six shorter horizons are
  snapshotted in passing.  The round loop is the pure-python reference;
* **batched, numpy backend**: same sharing, with span selection across the
  batch vectorised over struct-of-arrays wake-deadline columns.

With the seven-step horizon ladder (10k..70k) the per-instance executor
simulates 1+2+...+7 = 28 units of work per group where the batched one
simulates 7, so the structural ceiling is 4.0x.  The python floor asserts
1.5x (the boundary dense ticks stay per-instance python work); the numpy
floor asserts 3.0x on top of the same sharing by stripping the per-round
bookkeeping out of the interpreter.  The aggregated artifacts must be
byte-identical across all three — which ``tests/sweep/test_batch.py`` pins
for every registry campaign; here it guards the measurement itself.

Results are appended to ``results/BENCH_kernel.json`` (``batch_speedup``
and ``batch_speedup_numpy`` sections) for the CI perf-regression job.
"""

import json
import time

from repro.sim.backend import available_backends
from repro.sweep import campaign, execute_campaign, results_payload

CAMPAIGN = "pipeline-clock-ratio"
GROUPS = 8
MIN_BATCH_SPEEDUP_PYTHON = 1.5
MIN_BATCH_SPEEDUP_NUMPY = 3.0


def _timed(batch, backend="auto"):
    start = time.perf_counter()
    result = execute_campaign(campaign(CAMPAIGN), jobs=1, batch=batch, backend=backend)
    return time.perf_counter() - start, result


def test_bench_batched_execution_speedup(save_result, save_kernel_json):
    spec = campaign(CAMPAIGN)
    assert spec.n_points == 56
    has_numpy = "numpy" in available_backends()

    # Counterbalanced order (serial, python, numpy, numpy, python, serial),
    # scored by the min of each pair: the passes are seconds long and shared
    # hosts drift between back-to-back measurements.
    serial_a, serial = _timed(batch=False)
    python_a, batched_python = _timed(batch=True, backend="python")
    if has_numpy:
        numpy_a, batched_numpy = _timed(batch=True, backend="numpy")
        numpy_b, _ = _timed(batch=True, backend="numpy")
    python_b, _ = _timed(batch=True, backend="python")
    serial_b, _ = _timed(batch=False)
    serial_seconds = min(serial_a, serial_b)
    python_seconds = min(python_a, python_b)

    reference = json.dumps(results_payload(serial), sort_keys=True)
    assert json.dumps(results_payload(batched_python), sort_keys=True) == reference
    assert batched_python.batched_points == spec.n_points
    assert serial.batched_points == 0

    python_speedup = serial_seconds / max(python_seconds, 1e-9)
    serial_rate = spec.n_points / serial_seconds
    python_rate = spec.n_points / python_seconds
    lines = [
        f"Batched execution on {CAMPAIGN} ({spec.n_points} points, "
        f"{GROUPS} shared-prefix groups x 7 horizons):",
        f"  per-instance (--batch off)  : {serial_seconds * 1e3:8.1f} ms "
        f"({serial_rate:.2f} points/s)",
        f"  batched (--backend python)  : {python_seconds * 1e3:8.1f} ms "
        f"({python_rate:.2f} points/s, {python_speedup:.2f}x)",
    ]

    save_kernel_json(
        "batch_speedup",
        {
            "campaign": CAMPAIGN,
            "n_points": spec.n_points,
            "groups": GROUPS,
            "backend": "python",
            "serial_seconds": serial_seconds,
            "batched_seconds": python_seconds,
            "serial_points_per_second": serial_rate,
            "batched_points_per_second": python_rate,
            "speedup": python_speedup,
            "floor": MIN_BATCH_SPEEDUP_PYTHON,
        },
    )

    if has_numpy:
        numpy_seconds = min(numpy_a, numpy_b)
        assert json.dumps(results_payload(batched_numpy), sort_keys=True) == reference
        assert batched_numpy.batched_points == spec.n_points
        numpy_speedup = serial_seconds / max(numpy_seconds, 1e-9)
        numpy_rate = spec.n_points / numpy_seconds
        lines.append(
            f"  batched (--backend numpy)   : {numpy_seconds * 1e3:8.1f} ms "
            f"({numpy_rate:.2f} points/s, {numpy_speedup:.2f}x)"
        )
        save_kernel_json(
            "batch_speedup_numpy",
            {
                "campaign": CAMPAIGN,
                "n_points": spec.n_points,
                "groups": GROUPS,
                "backend": "numpy",
                "serial_seconds": serial_seconds,
                "batched_seconds": numpy_seconds,
                "serial_points_per_second": serial_rate,
                "batched_points_per_second": numpy_rate,
                "speedup": numpy_speedup,
                "floor": MIN_BATCH_SPEEDUP_NUMPY,
            },
        )

    lines.append("  structural ceiling          :     4.00x (28 vs 7 work units per group)")
    lines.append("  aggregated artifacts        : byte-identical")
    save_result("batch_execution_speedup", "\n".join(lines))

    assert python_speedup >= MIN_BATCH_SPEEDUP_PYTHON
    if has_numpy:
        assert numpy_speedup >= MIN_BATCH_SPEEDUP_NUMPY
