"""E2 — Figure 3: dual-mode program, per-command latency budget.

The figure annotates each command of the threshold-check microcode with its
latency class: read-modify-write commands take >= 2 cycles on the bus path,
``capture`` >= 1, ``jump-if`` and ``action`` exactly 1, and the whole
sequence is triggered one cycle after the event.  The benchmark runs the
program on the full SoC twice (sample above / below the threshold) and
reports both the per-event totals and the instant- vs sequenced-alert split.
"""

from repro.workloads.threshold import ThresholdWorkloadConfig, run_pels_threshold_workload


def _run_both_modes():
    sequenced = run_pels_threshold_workload(ThresholdWorkloadConfig(n_events=4, use_instant_alert=False))
    instant = run_pels_threshold_workload(ThresholdWorkloadConfig(n_events=4, use_instant_alert=True))
    return sequenced, instant


def test_bench_figure3_program_latency(benchmark, save_result):
    sequenced, instant = benchmark(_run_both_modes)

    lines = [
        "Figure 3 program on the PULPissimo+PELS model (4 linking events each):",
        f"  sequenced-alert variant : mean {sequenced.mean_latency:5.1f} cycles/event, worst {sequenced.worst_latency}",
        f"  instant-alert variant   : mean {instant.mean_latency:5.1f} cycles/event, worst {instant.worst_latency}",
        f"  alerts raised           : {sequenced.alerts_raised} (sequenced) / {instant.alerts_raised} (instant)",
        "",
        "Per-command latency classes (paper annotation):",
        "  clear   (rmw)      >= 2 cycles on the peripheral bus",
        "  capture            >= 1 cycle  (bus read)",
        "  jump-if               1 cycle",
        "  action                1 cycle  (instant, no bus)",
        "  set     (rmw)      >= 2 cycles on the peripheral bus",
    ]
    save_result("figure3_program_latency", "\n".join(lines))

    # The instant-alert variant must be at least as fast as the sequenced one,
    # and both service every event and agree on the alerts raised.
    assert instant.mean_latency <= sequenced.mean_latency
    assert sequenced.events_serviced == instant.events_serviced == 4
    assert sequenced.alerts_raised == instant.alerts_raised
    # The full five-command sequence stays within the 500 ns / 55 MHz budget (27 cycles).
    assert sequenced.worst_latency <= 27
