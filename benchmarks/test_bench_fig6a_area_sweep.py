"""E6 — Figure 6a: PELS area sweep over links and SCM lines vs. tiny RISC-V cores."""

import pytest

from repro.area.model import BASELINE_CORE_AREAS_KGE, PelsAreaModel
from repro.area.sweep import figure6a_sweep, minimal_configuration_summary, sweep_as_table


def test_bench_figure6a_area_sweep(benchmark, save_result):
    points = benchmark(figure6a_sweep)
    summary = minimal_configuration_summary()
    text = sweep_as_table(points)
    text += (
        f"\n\nminimal configuration (1 link, 4 lines): {summary['pels_minimal_kge']:.2f} kGE"
        f"\n  {summary['ibex_ratio']:.1f}x smaller than Ibex ({summary['ibex_kge']:.1f} kGE)"
        f"\n  {summary['picorv32_ratio']:.1f}x smaller than PicoRV32 ({summary['picorv32_kge']:.1f} kGE)"
    )
    save_result("figure6a_area_sweep", text)

    # The paper sweeps 1-8 links x 4/6/8 lines: 18 configurations.
    assert len(points) == 18
    by_config = {(p.n_links, p.scm_lines): p.total_kge for p in points}
    # Anchor point: ~7 kGE minimal configuration, ~4x below Ibex, ~2x below PicoRV32.
    assert by_config[(1, 4)] == pytest.approx(7.0, abs=0.3)
    assert summary["ibex_ratio"] == pytest.approx(4.0, rel=0.15)
    assert summary["picorv32_ratio"] == pytest.approx(2.0, rel=0.15)
    # Monotonicity of the sweep (the figure's visual shape).
    for lines in (4, 6, 8):
        areas = [by_config[(links, lines)] for links in (1, 2, 3, 4, 6, 8)]
        assert areas == sorted(areas)
    # Even the largest configuration stays in the figure's plotted range.
    assert by_config[(8, 8)] < 56.0
    # Intermediate configurations cross the PicoRV32 and Ibex reference lines,
    # exactly as the dashed lines in the figure show.
    assert any(total > BASELINE_CORE_AREAS_KGE["picorv32"] for total in by_config.values())
    assert any(total > BASELINE_CORE_AREAS_KGE["ibex"] for total in by_config.values())


def test_bench_figure6a_model_throughput(benchmark):
    """Micro-benchmark of the area model itself (cheap, used inside sweeps)."""
    model = PelsAreaModel()
    result = benchmark(model.estimate_config, 4, 6)
    assert result.total_kge > 0
