"""E4 — Figure 5 (right half): idle and linking power at iso-frequency (55 MHz).

With both systems clocked at 55 MHz the paper reports a 1.6x reduction of the
linking power when PELS mediates the event.
"""

import pytest

from repro.power.report import format_breakdown
from repro.power.scenarios import ISO_FREQUENCY_HZ, measure_idle_power, measure_linking_power


def _run_iso_frequency():
    return {
        "idle_ibex": measure_idle_power("ibex", ISO_FREQUENCY_HZ, idle_cycles=1000),
        "idle_pels": measure_idle_power("pels", ISO_FREQUENCY_HZ, idle_cycles=1000),
        "linking_ibex": measure_linking_power("ibex", ISO_FREQUENCY_HZ, n_events=6),
        "linking_pels": measure_linking_power("pels", ISO_FREQUENCY_HZ, n_events=6),
    }


def test_bench_figure5_iso_frequency(benchmark, save_result):
    results = benchmark(_run_iso_frequency)

    linking_ratio = results["linking_ibex"].total_uw / results["linking_pels"].total_uw
    idle_ratio = results["idle_ibex"].total_uw / results["idle_pels"].total_uw
    text = "\n\n".join(format_breakdown(result.breakdown) for result in results.values())
    text += (
        f"\n\nlinking power ratio (Ibex/PELS): {linking_ratio:.2f}x  (paper: 1.6x)"
        f"\nidle power ratio    (Ibex/PELS): {idle_ratio:.2f}x  (paper: ~1x, idle activity dominated by shared logic)"
    )
    save_result("figure5_iso_frequency", text)

    assert linking_ratio == pytest.approx(1.6, rel=0.2)
    # At the same frequency, the idle power of the two systems is close: the
    # idle benefit in the paper comes from the lower PELS-side frequency.
    assert idle_ratio == pytest.approx(1.0, rel=0.15)
    # Linking with PELS at the same frequency still wins because the core,
    # its instruction fetches, and the SRAM stay quiet.
    ibex_bar = results["linking_ibex"].breakdown
    pels_bar = results["linking_pels"].breakdown
    assert pels_bar.component("Processor") < ibex_bar.component("Processor")
    assert pels_bar.component("RAM") < ibex_bar.component("RAM")
