"""Ablation A2 — PELS configuration parameters under worst-case load.

Section III-1 notes that the interconnect topology and its round-robin
arbitration determine each link's worst-case latency "where all links try to
access peripherals simultaneously", and that the trigger FIFO absorbs events
arriving while the execution unit is busy.  This ablation sweeps:

* the number of links, with every link triggered by the same event and
  issuing a sequenced action — reporting best/worst completion latency;
* the trigger FIFO depth under a burst of back-to-back events on one link —
  reporting serviced vs dropped triggers.
"""

from repro.core.assembler import Assembler
from repro.core.config import PelsConfig
from repro.soc.pulpissimo import SocConfig, build_soc


def _contention_sweep(link_counts=(1, 2, 4, 8)):
    results = {}
    for n_links in link_counts:
        soc = build_soc(SocConfig(pels_config=PelsConfig(n_links=n_links, scm_lines=4)))
        assembler = Assembler()
        base = soc.address_map.peripheral_base("udma")
        gpio_set = (
            soc.address_map.peripheral_base("gpio") + soc.gpio.regs.offset_of("SET") - base
        ) // 4
        timer_bit = 1 << soc.fabric.index_of(soc.timer.event_line_name("overflow"))
        for index in range(n_links):
            program = assembler.assemble(f"write {gpio_set} {1 << index}\nend")
            soc.pels.program_link(index, program, trigger_mask=timer_bit, base_address=base)
        soc.timer.regs.reg("COMPARE").hw_write(3)
        soc.timer.regs.reg("CTRL").hw_write(0x3)
        soc.run(40 + 8 * n_links)
        latencies = [soc.pels.link(i).last_record.sequenced_latency for i in range(n_links)]
        results[n_links] = (min(latencies), max(latencies))
    return results


def _fifo_depth_sweep(depths=(1, 2, 4), burst=4):
    results = {}
    for depth in depths:
        soc = build_soc(SocConfig(pels_config=PelsConfig(n_links=1, scm_lines=4, fifo_depth=depth)))
        assembler = Assembler()
        base = soc.address_map.peripheral_base("udma")
        gpio_toggle = (
            soc.address_map.peripheral_base("gpio") + soc.gpio.regs.offset_of("TOGGLE") - base
        ) // 4
        timer_bit = 1 << soc.fabric.index_of(soc.timer.event_line_name("overflow"))
        program = assembler.assemble(f"write {gpio_toggle} 0x1\nend")
        link = soc.pels.program_link(0, program, trigger_mask=timer_bit, base_address=base)
        # A burst of events arriving every 2 cycles, faster than one sequenced
        # action (4+ cycles) can drain them.
        soc.timer.regs.reg("COMPARE").hw_write(2)
        soc.timer.start()
        soc.run(2 * burst)
        soc.timer.stop()
        soc.run(100)
        results[depth] = (link.events_serviced, link.trigger.fifo.dropped)
    return results


def _collect():
    return _contention_sweep(), _fifo_depth_sweep()


def test_bench_ablation_pels_configuration(benchmark, save_result):
    contention, fifo = benchmark(_collect)

    lines = ["Worst-case sequenced-action latency with all links triggered simultaneously:", ""]
    lines.append(f"{'links':>6s} {'best (cycles)':>14s} {'worst (cycles)':>15s}")
    for n_links, (best, worst) in sorted(contention.items()):
        lines.append(f"{n_links:>6d} {best:>14d} {worst:>15d}")
    lines += ["", "Trigger-FIFO depth under a 4-event burst arriving every 2 cycles:", ""]
    lines.append(f"{'depth':>6s} {'serviced':>9s} {'dropped':>8s}")
    for depth, (serviced, dropped) in sorted(fifo.items()):
        lines.append(f"{depth:>6d} {serviced:>9d} {dropped:>8d}")
    save_result("ablation_pels_configuration", "\n".join(lines))

    # Best-case latency is contention free regardless of the link count.
    assert all(best == 4 for best, _ in contention.values())
    # Worst-case latency grows with the number of contending links (round-robin bound).
    worsts = [worst for _, worst in sorted(contention.items())]
    assert worsts == sorted(worsts)
    assert contention[8][1] <= 4 + 8 * 4
    # A deeper FIFO services strictly more of the burst and drops fewer triggers.
    serviced = [fifo[depth][0] for depth in sorted(fifo)]
    dropped = [fifo[depth][1] for depth in sorted(fifo)]
    assert serviced == sorted(serviced)
    assert dropped == sorted(dropped, reverse=True)
    assert dropped[-1] < dropped[0]
