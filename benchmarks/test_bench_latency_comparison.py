"""E5 — Section IV-B latency comparison: 7 / 2 / 16 cycles."""

from repro.analysis.latency import (
    PAPER_IBEX_CYCLES,
    PAPER_INSTANT_CYCLES,
    PAPER_SEQUENCED_CYCLES,
    measure_latency_comparison,
)


def test_bench_latency_comparison(benchmark, save_result):
    comparison = benchmark(measure_latency_comparison)
    save_result("latency_comparison", comparison.format())

    assert comparison.pels_sequenced_cycles == PAPER_SEQUENCED_CYCLES
    assert comparison.pels_instant_cycles == PAPER_INSTANT_CYCLES
    assert comparison.ibex_interrupt_cycles == PAPER_IBEX_CYCLES
    # PELS wins by a little over 2x (sequenced) and 8x (instant), as in the paper.
    assert comparison.speedup_vs_ibex() > 2.0
    assert comparison.speedup_vs_ibex(instant=True) == 8.0
