"""E7 — Figure 6b: area fraction of a 4-link / 6-line PELS inside PULPissimo."""

import pytest

from repro.area.soc import figure6b_breakdown
from repro.core.config import PelsConfig


def test_bench_figure6b_soc_breakdown(benchmark, save_result):
    data = benchmark(figure6b_breakdown, PelsConfig(n_links=4, scm_lines=6))

    logic = data["logic_fractions"]
    with_sram = data["with_sram_fractions"]
    absolute = data["absolute_kge"]
    lines = ["PULPissimo area breakdown with a 4-link / 6-SCM-line PELS:", "", "logic only:"]
    lines += [f"  {name:<20s} {fraction * 100:5.1f} %" for name, fraction in sorted(logic.items())]
    lines += ["", "including 192 KiB SRAM:"]
    lines += [f"  {name:<20s} {fraction * 100:5.1f} %" for name, fraction in sorted(with_sram.items())]
    lines += ["", "absolute (kGE):"]
    lines += [f"  {name:<20s} {value:8.1f}" for name, value in sorted(absolute.items())]
    save_result("figure6b_soc_breakdown", "\n".join(lines))

    # Paper: PELS accounts for about 9.5 % of PULPissimo's logic area and
    # about 1 % when the 192 KiB SRAM is included.
    assert logic["PELS"] == pytest.approx(0.095, abs=0.01)
    assert with_sram["PELS"] == pytest.approx(0.01, abs=0.004)
    assert sum(logic.values()) == pytest.approx(1.0)
    assert sum(with_sram.values()) == pytest.approx(1.0)
    # The non-PELS shares keep their PULPissimo-like ordering.
    assert logic["Peripherals"] > logic["Processing domain"] > logic["Interconnect"] > logic["PELS"]
