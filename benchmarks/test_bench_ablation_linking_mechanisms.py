"""Ablation A1 — linking mechanisms across the flexibility/latency trade-off.

This is the quantitative version of Figure 1: the same minimal linking event
(producer event -> consumer register update / event input) handled by

* a configurable **event interconnect** (Section II-B baseline): lowest
  latency, but only built-in actions on co-designed peripherals;
* a **PELS instant action**: one extra cycle, still co-design required;
* a **PELS sequenced action**: works on any memory-mapped peripheral;
* the **Ibex interrupt** baseline: fully flexible, but the processing domain
  must wake up.

Not a table in the paper, but the ablation DESIGN.md calls out for the
design choice of combining both action types in one unit.
"""

from repro.analysis.latency import measure_latency_comparison
from repro.baselines.event_interconnect import EventInterconnect
from repro.peripherals.events import EventFabric
from repro.peripherals.gpio import Gpio
from repro.peripherals.timer import Timer
from repro.sim.component import Component
from repro.sim.simulator import Simulator


class _Closer(Component):
    def __init__(self, fabric):
        super().__init__("closer")
        self._fabric = fabric

    def tick(self, cycle):
        self._fabric.end_cycle()


def _measure_event_interconnect_latency() -> int:
    simulator = Simulator()
    fabric = EventFabric()
    timer = Timer("timer", compare=3)
    timer.connect_events(fabric)
    gpio = Gpio("gpio")
    gpio.connect_events(fabric)
    interconnect = EventInterconnect("prs", fabric=fabric)
    fired_at = []
    interconnect.configure_channel(0, [timer.event_line_name("overflow")])
    interconnect.route_to_callback(0, "probe", lambda: fired_at.append(simulator.current_cycle))
    interconnect.route_to_peripheral(0, gpio, "set_pad0")
    for component in (timer, gpio, interconnect, _Closer(fabric)):
        simulator.add_component(component)
    timer.regs.reg("CTRL").hw_write(0x3)  # one shot
    simulator.step(20)
    event_cycle = 2  # compare=3: the overflow pulses in the timer's third tick (cycle index 2)
    return fired_at[0] - event_cycle + 1


def _collect():
    comparison = measure_latency_comparison()
    return {
        "event_interconnect": _measure_event_interconnect_latency(),
        "pels_instant": comparison.pels_instant_cycles,
        "pels_sequenced": comparison.pels_sequenced_cycles,
        "ibex_interrupt": comparison.ibex_interrupt_cycles,
    }


def test_bench_ablation_linking_mechanisms(benchmark, save_result):
    latencies = benchmark(_collect)

    rows = [
        ("event interconnect (built-in action)", latencies["event_interconnect"], "no", "co-designed only"),
        ("PELS instant action", latencies["pels_instant"], "no", "co-designed only"),
        ("PELS sequenced action", latencies["pels_sequenced"], "yes", "any memory-mapped peripheral"),
        ("Ibex interrupt handler", latencies["ibex_interrupt"], "yes", "any memory-mapped peripheral"),
    ]
    lines = [f"{'mechanism':<40s} {'cycles':>7s} {'bus?':>5s}  target peripherals", "-" * 80]
    lines += [f"{name:<40s} {cycles:>7d} {bus:>5s}  {targets}" for name, cycles, bus, targets in rows]
    save_result("ablation_linking_mechanisms", "\n".join(lines))

    # The latency ordering that motivates combining both modes in one unit:
    assert (
        latencies["event_interconnect"]
        <= latencies["pels_instant"]
        < latencies["pels_sequenced"]
        < latencies["ibex_interrupt"]
    )
    # PELS instant actions match the event-interconnect class within one cycle.
    assert latencies["pels_instant"] - latencies["event_interconnect"] <= 1
    # Sequenced actions stay well below half the interrupt baseline.
    assert latencies["pels_sequenced"] * 2 <= latencies["ibex_interrupt"] + 2
