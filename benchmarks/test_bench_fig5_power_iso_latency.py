"""E3 — Figure 5 (left half): idle and linking power at iso-latency.

PELS and Ibex both meet a 500 ns linking-latency target; PELS does so at
27 MHz, Ibex needs 55 MHz.  The paper reports the event-linking power being
reduced by 2.5x and the idle power by 1.5x when PELS mediates the linking.
"""

import pytest

from repro.power.report import format_breakdown
from repro.power.scenarios import (
    ISO_LATENCY_IBEX_HZ,
    ISO_LATENCY_PELS_HZ,
    latency_cycles_budget,
    measure_idle_power,
    measure_linking_power,
)


def _run_iso_latency():
    return {
        "idle_ibex": measure_idle_power("ibex", ISO_LATENCY_IBEX_HZ, idle_cycles=1000),
        "idle_pels": measure_idle_power("pels", ISO_LATENCY_PELS_HZ, idle_cycles=1000),
        "linking_ibex": measure_linking_power("ibex", ISO_LATENCY_IBEX_HZ, n_events=6),
        "linking_pels": measure_linking_power("pels", ISO_LATENCY_PELS_HZ, n_events=6),
    }


def test_bench_figure5_iso_latency(benchmark, save_result):
    results = benchmark(_run_iso_latency)

    linking_ratio = results["linking_ibex"].total_uw / results["linking_pels"].total_uw
    idle_ratio = results["idle_ibex"].total_uw / results["idle_pels"].total_uw
    text = "\n\n".join(format_breakdown(result.breakdown) for result in results.values())
    text += (
        f"\n\nlinking power ratio (Ibex/PELS): {linking_ratio:.2f}x  (paper: 2.5x)"
        f"\nidle power ratio    (Ibex/PELS): {idle_ratio:.2f}x  (paper: 1.5x)"
    )
    save_result("figure5_iso_latency", text)

    # Both systems fit the 500 ns latency target at their operating points.
    assert latency_cycles_budget(ISO_LATENCY_PELS_HZ) >= 7
    assert latency_cycles_budget(ISO_LATENCY_IBEX_HZ) >= 16
    # Headline ratios: 2.5x (linking) and 1.5x (idle), within 20 %.
    assert linking_ratio == pytest.approx(2.5, rel=0.2)
    assert idle_ratio == pytest.approx(1.5, rel=0.2)
    # PELS itself is a small fraction of the PELS-driven linking power.
    pels_bar = results["linking_pels"].breakdown
    assert pels_bar.component("PELS") < 0.25 * pels_bar.total_uw
