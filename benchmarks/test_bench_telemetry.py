"""E12 — Telemetry: the disabled-mode overhead floor and enabled-mode neutrality.

The observability layer (``repro.obs``) promises that when no tracer is
installed the kernel hot paths are untouched: ``step()`` performs one
module-global fetch and one ``is None`` branch per call, and the span loop
it enters is byte-for-byte the pre-telemetry loop.  This benchmark holds
that promise to a number:

* **baseline** — the raw event-driven span loop (``_schedule_plan`` + a
  manual ``advance_span`` loop), i.e. ``step()`` with the telemetry
  dispatch physically absent;
* **disabled** — the real ``step()`` with no tracer installed;
* **enabled** — the real ``step()`` under an installed tracer (recorded
  for the figure, not asserted: enabled mode pays for real timestamping).

``overhead = max(0, disabled/baseline - 1)`` must stay under 5%.  The
workload is span-heavy (a short-period pulse over a long horizon) so the
per-call dispatch cost is amortised exactly the way real campaigns
amortise it.  Results land in ``results/telemetry_overhead.txt`` and the
``telemetry_overhead`` section of ``results/BENCH_kernel.json`` (consumed
by the CI perf-regression job, which asserts the same floor).
"""

import time

from repro.obs import tracing
from repro.sim import Simulator
from repro.sim.component import Component

HORIZON_CYCLES = 200_000
PULSE_PERIOD = 7  # ~28.5k spans over the horizon: span-dispatch dominated
REPEATS = 7
MAX_DISABLED_OVERHEAD = 0.05


class Pulse(Component):
    wake_cacheable = True

    def __init__(self, period, name="pulse"):
        super().__init__(name)
        self.period = period
        self.countdown = period
        self.pulses = 0

    def tick(self, cycle):
        self.countdown -= 1
        if self.countdown == 0:
            self.pulses += 1
            self.countdown = self.period

    def next_event(self):
        return self.countdown

    def skip(self, cycles):
        self.countdown -= cycles


def _fresh():
    simulator = Simulator()
    simulator.add_component(Pulse(PULSE_PERIOD))
    return simulator


def _baseline_run():
    """``step(HORIZON_CYCLES)`` with the telemetry dispatch removed."""
    simulator = _fresh()
    simulator._schedule_plan()
    state = simulator._state
    remaining = HORIZON_CYCLES
    while remaining > 0:
        remaining -= state.advance_span(remaining, dense=False)
    return simulator


def _disabled_run():
    simulator = _fresh()
    simulator.step(HORIZON_CYCLES)
    return simulator


def _enabled_run():
    with tracing.capture():
        simulator = _fresh()
        simulator.step(HORIZON_CYCLES)
    return simulator


def _best_of(fn, repeats=REPEATS):
    """Minimum wall time over ``repeats`` passes — the standard noise shield
    for ratio benchmarks on shared hosts (matches test_bench_sweep.py)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_bench_telemetry_disabled_overhead(save_result, save_kernel_json):
    # Warm the interned plan so no pass pays the one-time plan build.
    _fresh().step(64)

    baseline_seconds, baseline_sim = _best_of(_baseline_run)
    disabled_seconds, disabled_sim = _best_of(_disabled_run)
    enabled_seconds, enabled_sim = _best_of(_enabled_run)

    overhead = max(0.0, disabled_seconds / max(baseline_seconds, 1e-9) - 1.0)
    enabled_cost = enabled_seconds / max(baseline_seconds, 1e-9) - 1.0

    lines = [
        f"Telemetry overhead on a span-heavy run ({HORIZON_CYCLES} cycles, "
        f"{PULSE_PERIOD}-cycle pulse period, best of {REPEATS}):",
        f"  raw span loop (no dispatch) : {baseline_seconds * 1e3:8.1f} ms",
        f"  step(), telemetry disabled  : {disabled_seconds * 1e3:8.1f} ms "
        f"({overhead * 100:+.1f}%)",
        f"  step(), tracer installed    : {enabled_seconds * 1e3:8.1f} ms "
        f"({enabled_cost * 100:+.1f}%)",
        f"  disabled-overhead floor     : {MAX_DISABLED_OVERHEAD * 100:.0f}%",
    ]
    save_result("telemetry_overhead", "\n".join(lines))
    save_kernel_json(
        "telemetry_overhead",
        {
            "scenario": "pulse-span-loop",
            "horizon_cycles": HORIZON_CYCLES,
            "baseline_seconds": baseline_seconds,
            "disabled_seconds": disabled_seconds,
            "enabled_seconds": enabled_seconds,
            "overhead": overhead,
            "floor": MAX_DISABLED_OVERHEAD,
        },
    )

    # Telemetry must never perturb simulation state, enabled or disabled.
    stats = baseline_sim.kernel_stats
    assert disabled_sim.kernel_stats == stats
    assert enabled_sim.kernel_stats == stats
    assert stats["spans_skipped"] > 10_000  # the workload is span-dispatch bound

    assert overhead <= MAX_DISABLED_OVERHEAD
