"""E10 — Event-driven kernel: quiescence-skipping speedup on idle-heavy runs.

The always-on scenarios the paper motivates are idle for >95 % of their
cycles.  This benchmark runs the duty-cycled logging workload over the same
horizon under the legacy dense kernel and the event-driven kernel, checks
that both kernels report identical statistics (the cycle-exact equivalence
the differential suite proves in depth), and asserts the wall-clock speedup
that makes long-horizon workloads practical.
"""

import time

from repro.workloads.longrun import DutyCycledLoggingConfig, run_duty_cycled_logging

HORIZON_CYCLES = 60_000
SAMPLE_PERIOD = 2_000


def _run(dense: bool):
    config = DutyCycledLoggingConfig(
        sample_period_cycles=SAMPLE_PERIOD, horizon_cycles=HORIZON_CYCLES, dense=dense
    )
    return run_duty_cycled_logging(config)


def test_bench_event_kernel_speedup(benchmark, save_result):
    dense_start = time.perf_counter()
    dense_result = _run(dense=True)
    dense_seconds = time.perf_counter() - dense_start

    event_result = benchmark(_run, False)
    event_seconds = benchmark.stats.stats.min

    speedup = dense_seconds / max(event_seconds, 1e-9)
    lines = [
        f"Event-driven kernel on duty-cycled logging ({HORIZON_CYCLES} cycles, "
        f"{SAMPLE_PERIOD}-cycle sampling period):",
        f"  dense kernel        : {dense_seconds * 1e3:8.1f} ms wall-clock",
        f"  event-driven kernel : {event_seconds * 1e3:8.1f} ms wall-clock",
        f"  speedup             : {speedup:8.1f}x",
        f"  samples taken       : {event_result.samples_taken} (identical under both kernels)",
        f"  words logged        : {event_result.words_logged}",
    ]
    save_result("event_kernel_speedup", "\n".join(lines))

    # Both kernels must agree exactly on what happened...
    assert dense_result.summary() == event_result.summary()
    # ...and the event-driven kernel must make idle-heavy horizons cheap.
    # (Measured speedups are 30-100x; 3x keeps the assert robust on loaded CI.)
    assert speedup >= 3.0
