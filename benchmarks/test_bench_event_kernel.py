"""E10 — Event-driven kernel: quiescence-skipping speedup on idle-heavy runs.

Two experiments, one per layer of the scheduler:

* **dense vs event-driven** (PR 1's claim): the duty-cycled logging workload
  under the legacy cycle-driven kernel and the event-driven kernel, with
  identical statistics and an asserted wall-clock floor.
* **legacy vs cached scheduler** (this PR's claim): the figure5-idle
  long-horizon scenario with the PWM actuator armed — the workload whose
  128-cycle period used to bound every idle span.  The legacy configuration
  re-polls every hinted component per boundary and treats every event line
  as observed (``cached_wakes=False`` + a blanket fabric subscription); the
  cached configuration uses the deadline cache and the consumer-aware
  fabric.  Both must agree on the PWM period count cycle-exactly, the
  speedup floor is asserted, and ``next_event()`` call counts are recorded
  before/after.

Results land in ``results/event_kernel_speedup.txt`` (human-readable) and
``results/BENCH_kernel.json`` (machine-readable, consumed by the CI
perf-regression job).
"""

import time

from repro.power.scenarios import build_idle_measurement_soc
from repro.workloads.longrun import DutyCycledLoggingConfig, run_duty_cycled_logging

HORIZON_CYCLES = 60_000
SAMPLE_PERIOD = 2_000

IDLE_HORIZON_CYCLES = 2_000_000
IDLE_PWM_PERIOD = 128
#: Wall-clock floor for the cached scheduler over the legacy event kernel on
#: the figure5-idle long-horizon scenario.  Measured speedups are >100x; 2x
#: is the acceptance floor and keeps the assert robust on loaded CI.
CACHED_MIN_SPEEDUP = 2.0
DENSE_MIN_SPEEDUP = 3.0


def _run(dense: bool):
    config = DutyCycledLoggingConfig(
        sample_period_cycles=SAMPLE_PERIOD, horizon_cycles=HORIZON_CYCLES, dense=dense
    )
    return run_duty_cycled_logging(config)


def test_bench_event_kernel_speedup(benchmark, save_result, save_kernel_json):
    dense_start = time.perf_counter()
    dense_result = _run(dense=True)
    dense_seconds = time.perf_counter() - dense_start

    event_result = benchmark(_run, False)
    event_seconds = benchmark.stats.stats.min

    speedup = dense_seconds / max(event_seconds, 1e-9)
    lines = [
        f"Event-driven kernel on duty-cycled logging ({HORIZON_CYCLES} cycles, "
        f"{SAMPLE_PERIOD}-cycle sampling period):",
        f"  dense kernel        : {dense_seconds * 1e3:8.1f} ms wall-clock",
        f"  event-driven kernel : {event_seconds * 1e3:8.1f} ms wall-clock",
        f"  speedup             : {speedup:8.1f}x",
        f"  samples taken       : {event_result.samples_taken} (identical under both kernels)",
        f"  words logged        : {event_result.words_logged}",
    ]
    save_result("event_kernel_speedup", "\n".join(lines))
    save_kernel_json(
        "dense_vs_event",
        {
            "scenario": "duty-cycled-logging",
            "horizon_cycles": HORIZON_CYCLES,
            "dense_seconds": dense_seconds,
            "event_seconds": event_seconds,
            "speedup": speedup,
            "floor": DENSE_MIN_SPEEDUP,
        },
    )

    # Both kernels must agree exactly on what happened...
    assert dense_result.summary() == event_result.summary()
    # ...and the event-driven kernel must make idle-heavy horizons cheap.
    # (Measured speedups are 30-100x; 3x keeps the assert robust on loaded CI.)
    assert speedup >= DENSE_MIN_SPEEDUP


def _idle_soc(legacy: bool):
    """The figure5-idle scenario with the PWM actuator armed."""
    soc = build_idle_measurement_soc("pels", frequency_hz=27e6)
    if legacy:
        # PR-1 kernel: no deadline cache, every event line observed (the
        # pre-consumer-aware fabric woke for every PWM period pulse).
        soc.simulator.cached_wakes = False
        soc.fabric.subscribe(lambda line: None)
    soc.pwm.regs.reg("PERIOD").write(IDLE_PWM_PERIOD)
    soc.pwm.start()
    return soc


def _timed_idle_run(legacy: bool):
    soc = _idle_soc(legacy)
    start = time.perf_counter()
    soc.run(IDLE_HORIZON_CYCLES)
    seconds = time.perf_counter() - start
    return seconds, soc


def test_bench_cached_scheduler_speedup(save_result, save_kernel_json):
    legacy_seconds, legacy_soc = _timed_idle_run(legacy=True)
    cached_seconds, cached_soc = _timed_idle_run(legacy=False)

    legacy_stats = legacy_soc.simulator.kernel_stats
    cached_stats = cached_soc.simulator.kernel_stats
    speedup = legacy_seconds / max(cached_seconds, 1e-9)
    lines = [
        f"Cached wake-horizon scheduler on figure5-idle + {IDLE_PWM_PERIOD}-cycle PWM "
        f"({IDLE_HORIZON_CYCLES} cycles):",
        f"  legacy event kernel : {legacy_seconds * 1e3:8.1f} ms wall-clock, "
        f"{legacy_stats['next_event_calls']} next_event() calls, "
        f"{legacy_stats['dense_ticks']} dense ticks",
        f"  cached scheduler    : {cached_seconds * 1e3:8.1f} ms wall-clock, "
        f"{cached_stats['next_event_calls']} next_event() calls, "
        f"{cached_stats['dense_ticks']} dense ticks",
        f"  speedup             : {speedup:8.1f}x",
        f"  pwm periods elapsed : {cached_soc.pwm.periods_elapsed} (identical under both)",
    ]
    save_result("cached_scheduler_speedup", "\n".join(lines))
    save_kernel_json(
        "legacy_vs_cached",
        {
            "scenario": "figure5-idle + armed PWM",
            "horizon_cycles": IDLE_HORIZON_CYCLES,
            "pwm_period": IDLE_PWM_PERIOD,
            "legacy_seconds": legacy_seconds,
            "cached_seconds": cached_seconds,
            "speedup": speedup,
            "floor": CACHED_MIN_SPEEDUP,
            "legacy_next_event_calls": legacy_stats["next_event_calls"],
            "cached_next_event_calls": cached_stats["next_event_calls"],
            "legacy_dense_ticks": legacy_stats["dense_ticks"],
            "cached_dense_ticks": cached_stats["dense_ticks"],
        },
    )

    # Cycle-exactness first: both kernels replay the same hardware history.
    assert legacy_soc.pwm.periods_elapsed == cached_soc.pwm.periods_elapsed
    assert (
        legacy_soc.pwm.regs.reg("COUNT").value == cached_soc.pwm.regs.reg("COUNT").value
    )
    assert legacy_soc.cpu.sleep_cycles == cached_soc.cpu.sleep_cycles
    # The cached scheduler must eliminate the per-period polling...
    assert cached_stats["next_event_calls"] * 100 < legacy_stats["next_event_calls"]
    # ...and convert that into wall-clock.
    assert speedup >= CACHED_MIN_SPEEDUP
