"""Plan/snapshot cache warm starts: the second run must not re-simulate.

Runs the ``pipeline-clock-ratio`` campaign (56 points, 8 shared-prefix
groups x 7 horizons) twice against one plan-cache directory:

* **cold** — empty cache: every group prepares, simulates its full ladder,
  and publishes a snapshot at each horizon stop in passing;
* **warm** — same cache: every horizon has an exact-match snapshot, so each
  point is served by restore + finalize with **zero simulated cycles**.

The warm run's cost is 56 unpickles plus finalization, so the speedup is
bounded only by snapshot size, not horizon depth — on this campaign it
measures an order of magnitude or more.  The CI floor asserts a deliberately
conservative 1.3x (shared hosts jitter, and the floor must also hold for
horizon-ladder shapes where a restore replaces less simulation); both the
in-test assert and the CI perf-regression job check it.  Warm artifacts
must be byte-identical to cold — pinned here on the comparable payload and
for every registry campaign in ``tests/sweep/test_plan_cache_sweep.py``.

Results land in ``results/plan_cache_warm_speedup.txt`` and the
``plan_cache_warm_speedup`` section of ``results/BENCH_kernel.json``.
"""

import json
import time

from repro.sweep import campaign, execute_campaign, results_payload

CAMPAIGN = "pipeline-clock-ratio"
MIN_WARM_SPEEDUP = 1.3


def _timed(plan_cache):
    start = time.perf_counter()
    result = execute_campaign(campaign(CAMPAIGN), jobs=1, plan_cache=plan_cache)
    return time.perf_counter() - start, result


def test_bench_plan_cache_warm_speedup(tmp_path, save_result, save_kernel_json):
    spec = campaign(CAMPAIGN)
    cache_dir = str(tmp_path / "plan-cache")

    cold_seconds, cold = _timed(cache_dir)
    # Two warm passes, scored by the min: the warm run is fast enough that
    # a single scheduler hiccup on a shared host could dominate it.
    warm_a, warm = _timed(cache_dir)
    warm_b, _ = _timed(cache_dir)
    warm_seconds = min(warm_a, warm_b)

    assert cold.cache["hits"] == 0 and cold.cache["writes"] > 0
    assert warm.cache["hits"] == spec.n_points and warm.cache["misses"] == 0
    reference = json.dumps(results_payload(cold), sort_keys=True)
    assert json.dumps(results_payload(warm), sort_keys=True) == reference

    speedup = cold_seconds / max(warm_seconds, 1e-9)
    lines = [
        f"Plan-cache warm start on {CAMPAIGN} ({spec.n_points} points, "
        f"{cold.cache['writes']} snapshots published):",
        f"  cold (empty cache)     : {cold_seconds * 1e3:8.1f} ms",
        f"  warm (all snapshots)   : {warm_seconds * 1e3:8.1f} ms ({speedup:.2f}x)",
        f"  warm cache counters    : {warm.cache['hits']} hits, "
        f"{warm.cache['misses']} misses, {warm.cache['errors']} errors",
        f"  artifacts              : byte-identical",
        f"  floor                  : {MIN_WARM_SPEEDUP:.1f}x",
    ]
    save_result("plan_cache_warm_speedup", "\n".join(lines))
    save_kernel_json(
        "plan_cache_warm_speedup",
        {
            "campaign": CAMPAIGN,
            "n_points": spec.n_points,
            "snapshots_published": cold.cache["writes"],
            "cold_seconds": cold_seconds,
            "warm_seconds": warm_seconds,
            "warm_hits": warm.cache["hits"],
            "speedup": speedup,
            "floor": MIN_WARM_SPEEDUP,
        },
    )

    assert speedup >= MIN_WARM_SPEEDUP, (
        f"plan-cache warm speedup {speedup:.2f}x is below the "
        f"{MIN_WARM_SPEEDUP:.1f}x floor"
    )
