"""E8 — Section IV-B text: switching activity around the memory system.

The paper attributes most of the PELS power win to the quiet memory system:
3.7x less memory-system power at iso-latency and 4.3x at iso-frequency.  The
benchmark reports both the RAM power-component ratio and the raw activity
counts that drive it (instruction fetches and SRAM accesses per linking
event).
"""

import pytest

from repro.power.scenarios import run_figure5
from repro.workloads.threshold import ThresholdWorkloadConfig, run_ibex_threshold_workload, run_pels_threshold_workload


def _collect():
    dataset = run_figure5(n_events=6, idle_cycles=800)
    config = ThresholdWorkloadConfig(n_events=6)
    pels = run_pels_threshold_workload(config)
    ibex = run_ibex_threshold_workload(config)
    return dataset, pels, ibex


def test_bench_memory_system_activity(benchmark, save_result):
    dataset, pels, ibex = benchmark(_collect)

    iso_freq_ratio = dataset.ram_ratio("linking_iso_freq")
    iso_latency_ratio = dataset.ram_ratio("linking_iso_latency")
    ibex_fetches = ibex.soc.activity.get("sram", "instruction_fetches")
    pels_fetches = pels.soc.activity.get("sram", "instruction_fetches")
    ibex_sram = ibex.soc.sram.total_accesses
    pels_sram = pels.soc.sram.total_accesses

    lines = [
        "Memory-system activity during event linking (6 events):",
        f"  SRAM instruction fetches : Ibex {ibex_fetches:5d}   PELS {pels_fetches:5d}",
        f"  SRAM total accesses      : Ibex {ibex_sram:5d}   PELS {pels_sram:5d}",
        f"  PELS private SCM reads   : {pels.soc.activity.get('pels', 'scm_reads'):5d}",
        "",
        f"RAM power-component ratio (Ibex/PELS), iso-frequency : {iso_freq_ratio:.2f}x  (paper: 4.3x)",
        f"RAM power-component ratio (Ibex/PELS), iso-latency   : {iso_latency_ratio:.2f}x  (paper: 3.7x)",
    ]
    save_result("memory_system_activity", "\n".join(lines))

    # PELS keeps the SRAM out of the linking path entirely: the only memory it
    # touches is its private SCM.
    assert pels_fetches == 0
    assert ibex_fetches > 0
    assert pels.soc.activity.get("pels", "scm_reads") > 0
    # The RAM power component drops by roughly 4x at iso-frequency; at
    # iso-latency the model keeps the same direction (see EXPERIMENTS.md for
    # the discussion of the absolute value).
    assert iso_freq_ratio == pytest.approx(4.3, rel=0.25)
    assert iso_latency_ratio > 3.0
