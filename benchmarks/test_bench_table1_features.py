"""E1 — Table I: feature comparison of peripheral-event-handling systems."""

from repro.analysis.sota import all_systems
from repro.analysis.tables import format_table1, table1_rows


def test_bench_table1_feature_comparison(benchmark, save_result):
    rows = benchmark(table1_rows)
    text = format_table1()
    save_result("table1_feature_comparison", text)

    # Shape checks against the paper's Table I.
    assert len(rows) == 8
    pels = rows[-1]
    assert pels["instant_actions"] == "yes"
    assert pels["sequenced_actions"] == "yes"
    assert pels["open_source"] == "yes"
    # Every prior system misses at least one of PELS's three differentiators.
    for system in all_systems()[:-1]:
        assert not (system.instant_actions and system.sequenced_actions and system.open_source)
