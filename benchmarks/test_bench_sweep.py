"""E11 — Sweep sharding: near-linear speedup from a 2-worker pool.

Runs a dense-kernel campaign (dense points are compute-heavy, so pool
overhead is well amortised) serially and sharded across 2 processes, checks
the aggregated results are identical, and asserts the sharding speedup.  The
speedup assertion is gated on the host actually having two cores — on a
single-CPU container sharding degenerates to time-slicing and only the
determinism claim is checkable.
"""

import os
import time

from repro.sweep import CampaignSpec, execute_campaign, results_payload

BENCH_SPEC = CampaignSpec(
    name="bench-sharding",
    description="dense duty-cycled-logging points for the sharding benchmark",
    scenario="duty-cycled-logging",
    dense=True,
    grid={
        "horizon_cycles": (40_000, 60_000),
        "sample_period_cycles": (1_000, 2_000, 3_000),
    },
)

JOBS = 2
# Linear would be 2.0x; CI runners are shared and noisy, so assert a robust
# floor the same way the event-kernel benchmark asserts 3x of a measured 50x.
MIN_SPEEDUP = 1.3


def test_bench_sweep_sharding_speedup(save_result):
    start = time.perf_counter()
    serial = execute_campaign(BENCH_SPEC, jobs=1)
    serial_seconds = time.perf_counter() - start

    start = time.perf_counter()
    sharded = execute_campaign(BENCH_SPEC, jobs=JOBS)
    sharded_seconds = time.perf_counter() - start

    speedup = serial_seconds / max(sharded_seconds, 1e-9)
    cores = os.cpu_count() or 1
    lines = [
        f"Sweep sharding on {BENCH_SPEC.n_points} dense duty-cycled-logging points "
        f"({JOBS}-worker pool, {cores} core(s) available):",
        f"  serial (--jobs 1)   : {serial_seconds * 1e3:8.1f} ms wall-clock",
        f"  sharded (--jobs {JOBS})  : {sharded_seconds * 1e3:8.1f} ms wall-clock",
        f"  speedup             : {speedup:8.2f}x",
        f"  aggregated results  : identical ({serial.n_points} points)",
    ]
    save_result("sweep_sharding_speedup", "\n".join(lines))

    # Sharding must never change the results...
    assert results_payload(serial) == results_payload(sharded)
    # ...and must deliver near-linear throughput where the cores exist.
    if cores >= JOBS:
        assert speedup >= MIN_SPEEDUP
