"""E11 — Sweep sharding: chunked dispatch must never lose to serial.

Runs a 12-point dense-kernel campaign (dense points are compute-heavy, so
pool overhead is measurable but amortisable) serially and with a 2-worker
request, checks the aggregated results are identical, and asserts the
execution-policy contract:

* on a single-core host the pool is clamped away entirely, so ``--jobs 2``
  degenerates to the serial path and must be *no slower* than ``--jobs 1``
  (the pre-chunking dispatcher measured 0.86x here);
* where two or more cores exist, chunked sharding must deliver near-linear
  throughput (floor 1.5x).

The measurements are appended to ``results/BENCH_kernel.json`` for the CI
perf-regression job, next to the human-readable txt artifact.
"""

import os
import time

from repro.sweep import CampaignSpec, auto_chunk, execute_campaign, results_payload

BENCH_SPEC = CampaignSpec(
    name="bench-sharding",
    description="dense duty-cycled-logging points for the sharding benchmark",
    scenario="duty-cycled-logging",
    dense=True,
    grid={
        "horizon_cycles": (20_000, 30_000, 40_000),
        "sample_period_cycles": (1_000, 2_000),
        "words_per_readout": (4, 8),
    },
)

JOBS = 2
# Linear would be 2.0x; CI runners are shared and noisy, so assert a robust
# floor the same way the event-kernel benchmark asserts 3x of a measured 50x.
MIN_MULTICORE_SPEEDUP = 1.5
# Single-core hosts run both configurations through the identical serial
# path; the margin only absorbs timing noise between the two passes.
MIN_SINGLE_CORE_SPEEDUP = 0.9


def _timed(jobs):
    start = time.perf_counter()
    result = execute_campaign(BENCH_SPEC, jobs=jobs)
    return time.perf_counter() - start, result


def test_bench_sweep_sharding_speedup(save_result, save_kernel_json):
    assert BENCH_SPEC.n_points >= 12

    # Two passes per configuration in counterbalanced order (serial, sharded,
    # sharded, serial), scored by the min: dense campaigns are seconds-long,
    # and shared hosts drift tens of percent between back-to-back passes —
    # always measuring one configuration second would bias the ratio.
    serial_a, serial = _timed(1)
    sharded_a, sharded = _timed(JOBS)
    sharded_b, _ = _timed(JOBS)
    serial_b, _ = _timed(1)
    serial_seconds = min(serial_a, serial_b)
    sharded_seconds = min(sharded_a, sharded_b)

    speedup = serial_seconds / max(sharded_seconds, 1e-9)
    cores = os.cpu_count() or 1
    chunk = auto_chunk(BENCH_SPEC.n_points, JOBS)
    lines = [
        f"Sweep sharding on {BENCH_SPEC.n_points} dense duty-cycled-logging points "
        f"({JOBS}-worker request, chunk {chunk}, {cores} core(s) available):",
        f"  serial (--jobs 1)   : {serial_seconds * 1e3:8.1f} ms wall-clock",
        f"  sharded (--jobs {JOBS})  : {sharded_seconds * 1e3:8.1f} ms wall-clock",
        f"  speedup             : {speedup:8.2f}x",
        f"  aggregated results  : identical ({serial.n_points} points)",
    ]
    save_result("sweep_sharding_speedup", "\n".join(lines))

    save_kernel_json(
        "sweep_sharding",
        {
            "n_points": BENCH_SPEC.n_points,
            "jobs": JOBS,
            "chunk": chunk,
            "cores": cores,
            "serial_seconds": serial_seconds,
            "sharded_seconds": sharded_seconds,
            "speedup": speedup,
            "floor": MIN_MULTICORE_SPEEDUP if cores >= JOBS else MIN_SINGLE_CORE_SPEEDUP,
        },
    )

    # Sharding must never change the results...
    assert results_payload(serial) == results_payload(sharded)
    # ...must never lose to serial (the PR-2 dispatcher did, 0.86x on 1 core)...
    assert speedup >= MIN_SINGLE_CORE_SPEEDUP
    # ...and must deliver near-linear throughput where the cores exist.
    if cores >= JOBS:
        assert speedup >= MIN_MULTICORE_SPEEDUP
