"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one table or figure of the paper.  Results are
printed to stdout (so ``pytest benchmarks/ --benchmark-only -s`` shows the
regenerated rows/series) and also written to ``results/`` as plain-text
files for inclusion in EXPERIMENTS.md.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"
KERNEL_JSON = "BENCH_kernel.json"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Directory where benchmarks drop their regenerated tables/series."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def save_result(results_dir):
    """Callable that writes one experiment's textual output to results/<name>.txt."""

    def _save(name: str, text: str) -> Path:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        print(f"\n# --- {name} ---\n{text}\n")
        return path

    return _save


@pytest.fixture()
def save_kernel_json(results_dir):
    """Callable merging one benchmark section into results/BENCH_kernel.json
    (the machine-readable artifact the CI perf-regression job consumes)."""

    def _save(section: str, payload: dict) -> Path:
        path = results_dir / KERNEL_JSON
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            document = {"schema_version": 1}
        document[section] = payload
        path.write_text(
            json.dumps(document, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        return path

    return _save
